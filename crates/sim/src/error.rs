//! Error types for the simulation engine.

use crate::time::SimTime;
use std::error::Error;
use std::fmt;

/// Errors returned by the flow engine and task-graph executor.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A job was submitted with an empty route.
    EmptyRoute,
    /// A route referenced a resource id not registered with the engine.
    UnknownResource(usize),
    /// A job amount or rate cap was negative, zero (for caps) or non-finite.
    InvalidAmount(f64),
    /// `advance_to` was called with a time earlier than the current time.
    TimeReversal {
        /// Current engine time.
        now: SimTime,
        /// The (earlier) requested time.
        requested: SimTime,
    },
    /// Active jobs exist but none can make progress.
    Stalled,
    /// The task graph contains a dependency cycle (tasks listed by index).
    DependencyCycle(Vec<usize>),
    /// A task referenced a dependency index that does not exist.
    UnknownTask(usize),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptyRoute => write!(f, "job route is empty"),
            SimError::UnknownResource(i) => write!(f, "unknown resource index {i}"),
            SimError::InvalidAmount(a) => write!(f, "invalid job amount or rate cap {a}"),
            SimError::TimeReversal { now, requested } => {
                write!(f, "cannot advance to {requested} before current time {now}")
            }
            SimError::Stalled => write!(f, "active jobs exist but none can make progress"),
            SimError::DependencyCycle(ids) => {
                write!(f, "task graph has a dependency cycle involving tasks {ids:?}")
            }
            SimError::UnknownTask(i) => write!(f, "unknown task index {i}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(SimError::EmptyRoute.to_string(), "job route is empty");
        assert_eq!(SimError::UnknownResource(4).to_string(), "unknown resource index 4");
        let e =
            SimError::TimeReversal { now: SimTime::from_secs(2), requested: SimTime::from_secs(1) };
        assert!(e.to_string().contains("before current time"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_err<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_err(SimError::Stalled);
    }
}
