//! Execution traces: turn a [`Timeline`](crate::Timeline) into a textual
//! Gantt chart for debugging schedules — which transfers overlap, where
//! the pipeline bubbles are, what gates the critical path.

use crate::executor::Timeline;
use crate::task::{TaskGraph, TaskId};
use crate::time::SimTime;
use std::fmt::Write as _;

/// One rendered lane of a Gantt chart.
#[derive(Debug, Clone, PartialEq)]
pub struct GanttLane {
    /// Task label.
    pub label: String,
    /// Start of the span.
    pub start: SimTime,
    /// End of the span.
    pub end: SimTime,
    /// The rendered bar.
    pub bar: String,
}

/// Renders the executed tasks of `graph` as a fixed-width text Gantt
/// chart with `width` columns spanning the timeline's duration.
///
/// Tasks are sorted by start time; milestones (zero-length) render as a
/// single `|`. Background tasks are marked with `~` bars instead of `#`.
///
/// # Examples
///
/// ```
/// use hilos_sim::{execute, gantt, FlowEngine, ResourceKind, ResourceSpec, TaskGraph};
///
/// let mut eng = FlowEngine::new();
/// let link = eng.add_resource(ResourceSpec::new("link", ResourceKind::Link, 1e9));
/// let mut g = TaskGraph::new();
/// let a = g.transfer("load", 1e9, vec![link], &[]);
/// g.transfer("load2", 1e9, vec![link], &[a]);
/// let tl = execute(&mut eng, &g).unwrap();
/// let chart = gantt(&g, &tl, 40);
/// assert!(chart.contains("load"));
/// ```
pub fn gantt(graph: &TaskGraph, timeline: &Timeline, width: usize) -> String {
    let width = width.max(10);
    let t0 = timeline.started_at();
    let t1 = timeline.finished_at();
    let total = (t1 - t0).as_secs_f64().max(1e-12);

    let mut lanes: Vec<(TaskId, GanttLane)> = Vec::new();
    for (id, task) in graph.iter() {
        let Some(span) = timeline.span(id) else { continue };
        let s = ((span.start - t0).as_secs_f64() / total * width as f64).floor() as usize;
        let e = ((span.end - t0).as_secs_f64() / total * width as f64).ceil() as usize;
        let s = s.min(width.saturating_sub(1));
        let e = e.clamp(s + 1, width).max(s + 1);
        let mut bar = " ".repeat(width);
        let fill = if span.start == span.end {
            "|"
        } else if task.is_background() {
            "~"
        } else {
            "#"
        };
        bar.replace_range(char_range(&bar, s, e), &fill.repeat(e - s));
        lanes.push((
            id,
            GanttLane { label: task.label().to_string(), start: span.start, end: span.end, bar },
        ));
    }
    lanes.sort_by_key(|(id, l)| (l.start, *id));

    let label_w = lanes.iter().map(|(_, l)| l.label.len()).max().unwrap_or(4).min(32);
    let mut out = String::new();
    let _ =
        writeln!(out, "{:<label_w$}  0{}{}", "task", " ".repeat(width.saturating_sub(2)), t1 - t0);
    for (_, lane) in &lanes {
        let mut label = lane.label.clone();
        label.truncate(label_w);
        let _ = writeln!(out, "{label:<label_w$}  {}", lane.bar);
    }
    out
}

fn char_range(s: &str, start: usize, end: usize) -> std::ops::Range<usize> {
    // All-ASCII bars: byte indices equal char indices.
    debug_assert!(s.is_ascii());
    start..end.min(s.len())
}

/// Returns the tasks on the foreground critical path: walking back from
/// the last-finishing foreground task through the dependency that
/// finished last.
pub fn critical_path(graph: &TaskGraph, timeline: &Timeline) -> Vec<TaskId> {
    // Find the foreground task that ends last.
    let mut cur: Option<TaskId> = None;
    let mut best_end = SimTime::ZERO;
    for (id, task) in graph.iter() {
        if task.is_background() {
            continue;
        }
        if let Some(span) = timeline.span(id) {
            // Ties go to the later task id: a milestone that closes the
            // step should win over the work that fed it.
            if cur.is_none() || span.end >= best_end {
                best_end = span.end;
                cur = Some(id);
            }
        }
    }
    let mut path = Vec::new();
    while let Some(id) = cur {
        path.push(id);
        let deps = graph.task(id).deps();
        cur = deps
            .iter()
            .copied()
            .max_by_key(|d| timeline.span(*d).map(|s| s.end).unwrap_or(SimTime::ZERO));
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FlowEngine;
    use crate::executor::execute;
    use crate::resource::{ResourceKind, ResourceSpec};

    fn world() -> (FlowEngine, crate::resource::ResourceId) {
        let mut eng = FlowEngine::new();
        let link = eng.add_resource(ResourceSpec::new("link", ResourceKind::Link, 1e9));
        (eng, link)
    }

    #[test]
    fn gantt_renders_sequential_bars() {
        let (mut eng, link) = world();
        let mut g = TaskGraph::new();
        let a = g.transfer("first", 1e9, vec![link], &[]);
        g.transfer("second", 1e9, vec![link], &[a]);
        let tl = execute(&mut eng, &g).unwrap();
        let chart = gantt(&g, &tl, 20);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        // First bar occupies the left half, second the right half.
        let first = lines[1].split_at(8).1;
        let second = lines[2].split_at(8).1;
        assert!(first.trim_end().starts_with('#'));
        assert!(second.trim_start().starts_with('#'));
        assert!(first.find('#') < second.find('#'));
    }

    #[test]
    fn background_tasks_render_differently() {
        let (mut eng, link) = world();
        let mut g = TaskGraph::new();
        g.transfer("fg", 1e9, vec![link], &[]);
        let bg = g.transfer("bg", 1e9, vec![link], &[]);
        g.set_background(bg);
        let tl = execute(&mut eng, &g).unwrap();
        let chart = gantt(&g, &tl, 16);
        assert!(chart.contains('#'));
        assert!(chart.contains('~'));
    }

    #[test]
    fn critical_path_follows_latest_dependency() {
        let (mut eng, link) = world();
        let mut g = TaskGraph::new();
        let fast = g.transfer("fast", 1e8, vec![link], &[]);
        let slow = g.transfer("slow", 2e9, vec![link], &[]);
        let sink = g.milestone("sink", &[fast, slow]);
        let tl = execute(&mut eng, &g).unwrap();
        let path = critical_path(&g, &tl);
        assert_eq!(path, vec![slow, sink]);
    }

    #[test]
    fn critical_path_ignores_background() {
        let (mut eng, link) = world();
        let mut g = TaskGraph::new();
        let fg = g.transfer("fg", 1e9, vec![link], &[]);
        let bg = g.transfer("bg", 5e9, vec![link], &[]);
        g.set_background(bg);
        let tl = execute(&mut eng, &g).unwrap();
        let path = critical_path(&g, &tl);
        assert_eq!(path, vec![fg]);
    }

    #[test]
    fn milestones_render_as_pipe() {
        let (mut eng, _link) = world();
        let mut g = TaskGraph::new();
        g.milestone("m", &[]);
        g.delay("d", SimTime::from_secs(1), &[]);
        let tl = execute(&mut eng, &g).unwrap();
        let chart = gantt(&g, &tl, 12);
        assert!(chart.contains('|'));
    }
}
