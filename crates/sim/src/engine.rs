//! The flow engine: max-min fair sharing of resources among concurrent jobs.
//!
//! Every active job demands a fixed amount of work (bytes, FLOPs) across a
//! *route* of resources it occupies simultaneously. At any instant each job
//! receives a rate determined by **max-min fairness with rate caps**
//! (progressive filling): rates grow uniformly until a resource saturates or
//! a job hits its cap, those jobs freeze, and filling continues among the
//! rest. Rates are recomputed whenever the set of active jobs changes, which
//! makes this the classical *flow-level* network simulation — exact for
//! bandwidth-shared links and a good first-order model for memory ports,
//! storage channels and compute engines.

use crate::error::SimError;
use crate::resource::{ResourceId, ResourceSpec, ResourceStats};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifier of an in-flight job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId {
    slot: u32,
    seq: u64,
}

impl JobId {
    /// Monotonic sequence number (unique across the engine's lifetime).
    pub fn sequence(self) -> u64 {
        self.seq
    }
}

#[derive(Debug, Clone)]
struct JobState {
    seq: u64,
    demand: f64,
    remaining: f64,
    route: Vec<ResourceId>,
    rate_cap: Option<f64>,
    rate: f64,
    /// Predicted absolute completion instant under the current rate, or
    /// `None` if the job cannot progress (rate zero). Valid as long as the
    /// rate is unchanged: progress is linear, so an absolute prediction
    /// survives pure time advances without recomputation.
    pred: Option<SimTime>,
}

#[derive(Debug, Clone)]
struct ResourceState {
    spec: ResourceSpec,
    stats: ResourceStats,
}

/// A job that finished during [`FlowEngine::advance_to`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// The job that completed.
    pub job: JobId,
    /// The instant at which it completed (the time advanced to).
    pub at: SimTime,
}

/// Deterministic flow-level simulation engine.
///
/// # Examples
///
/// Two equal transfers sharing one link take twice as long as one:
///
/// ```
/// use hilos_sim::{FlowEngine, ResourceKind, ResourceSpec, SimTime};
///
/// let mut eng = FlowEngine::new();
/// let link = eng.add_resource(ResourceSpec::new("link", ResourceKind::Link, 1e9));
/// eng.submit(&[link], 1e9, None).unwrap();
/// eng.submit(&[link], 1e9, None).unwrap();
/// let end = eng.run_to_idle().unwrap();
/// assert_eq!(end, SimTime::from_secs(2));
/// ```
#[derive(Debug, Default)]
pub struct FlowEngine {
    resources: Vec<ResourceState>,
    jobs: Vec<Option<JobState>>,
    free_slots: Vec<u32>,
    next_seq: u64,
    now: SimTime,
    rates_dirty: bool,
    active_jobs: usize,
    /// Min-heap of `(predicted completion, seq, slot)` — the completion
    /// index behind [`FlowEngine::next_completion_time`]. Entries are
    /// lazily invalidated: a rate change re-pushes a fresh entry and the
    /// stale one is discarded when it surfaces (its time no longer matches
    /// the job's stored prediction, or the job is gone).
    pred_heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
}

impl FlowEngine {
    /// Creates an empty engine at time zero.
    pub fn new() -> Self {
        FlowEngine::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of jobs currently in flight.
    pub fn active_jobs(&self) -> usize {
        self.active_jobs
    }

    /// Registers a resource and returns its id.
    pub fn add_resource(&mut self, spec: ResourceSpec) -> ResourceId {
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(ResourceState { spec, stats: ResourceStats::default() });
        id
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// The static description of a resource.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this engine.
    pub fn resource(&self, id: ResourceId) -> &ResourceSpec {
        &self.resources[id.index()].spec
    }

    /// Cumulative statistics of a resource since engine creation.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this engine.
    pub fn stats(&self, id: ResourceId) -> ResourceStats {
        self.resources[id.index()].stats
    }

    /// Snapshot of all resource statistics, indexed by resource index.
    pub fn stats_snapshot(&self) -> Vec<ResourceStats> {
        self.resources.iter().map(|r| r.stats).collect()
    }

    /// Submits a job demanding `amount` units across `route`.
    ///
    /// The job occupies every resource in `route` simultaneously; its rate
    /// is bounded by the max-min fair share on each and by `rate_cap` if
    /// given. Zero-amount jobs are accepted and complete at the next
    /// [`FlowEngine::advance_to`] boundary.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyRoute`] if `route` is empty.
    /// * [`SimError::UnknownResource`] if any id is out of range.
    /// * [`SimError::InvalidAmount`] if `amount` is negative or non-finite,
    ///   or `rate_cap` is non-positive or non-finite.
    pub fn submit(
        &mut self,
        route: &[ResourceId],
        amount: f64,
        rate_cap: Option<f64>,
    ) -> Result<JobId, SimError> {
        if route.is_empty() {
            return Err(SimError::EmptyRoute);
        }
        for r in route {
            if r.index() >= self.resources.len() {
                return Err(SimError::UnknownResource(r.index()));
            }
        }
        if !amount.is_finite() || amount < 0.0 {
            return Err(SimError::InvalidAmount(amount));
        }
        if let Some(cap) = rate_cap {
            if !cap.is_finite() || cap <= 0.0 {
                return Err(SimError::InvalidAmount(cap));
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let state = JobState {
            seq,
            demand: amount,
            remaining: amount,
            route: route.to_vec(),
            rate_cap,
            rate: 0.0,
            pred: None,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.jobs[s as usize] = Some(state);
                s
            }
            None => {
                self.jobs.push(Some(state));
                (self.jobs.len() - 1) as u32
            }
        };
        self.active_jobs += 1;
        self.rates_dirty = true;
        Ok(JobId { slot, seq })
    }

    /// Recomputes max-min fair rates (progressive filling with caps), then
    /// refreshes the completion index for every job whose rate changed.
    fn recompute_rates(&mut self) {
        if !self.rates_dirty {
            return;
        }
        self.rates_dirty = false;

        // Old rates, slot-aligned, to detect which predictions survive.
        let old_rates: Vec<f64> =
            self.jobs.iter().map(|j| j.as_ref().map_or(0.0, |job| job.rate)).collect();

        let n_res = self.resources.len();
        let mut residual: Vec<f64> = self.resources.iter().map(|r| r.spec.capacity()).collect();
        let mut load: Vec<u32> = vec![0; n_res];

        // Collect indices of unfrozen jobs.
        let mut unfrozen: Vec<u32> = Vec::with_capacity(self.active_jobs);
        for (i, j) in self.jobs.iter().enumerate() {
            if let Some(job) = j {
                for r in &job.route {
                    load[r.index()] += 1;
                }
                unfrozen.push(i as u32);
            }
        }

        // Progressive filling.
        while !unfrozen.is_empty() {
            // Bottleneck share among resources used by unfrozen jobs.
            let mut share = f64::INFINITY;
            for r in 0..n_res {
                if load[r] > 0 {
                    let s = (residual[r] / load[r] as f64).max(0.0);
                    if s < share {
                        share = s;
                    }
                }
            }
            debug_assert!(share.is_finite(), "unfrozen jobs must load some resource");

            // Jobs whose cap is below the share freeze at their cap first.
            let min_cap = unfrozen
                .iter()
                .filter_map(|&i| self.jobs[i as usize].as_ref().unwrap().rate_cap)
                .fold(f64::INFINITY, f64::min);

            let eps = 1e-12 * (1.0 + share.abs());
            if min_cap < share - eps {
                // Freeze every job whose cap is (close to) the minimum cap.
                let mut next = Vec::with_capacity(unfrozen.len());
                for &i in &unfrozen {
                    let job = self.jobs[i as usize].as_ref().unwrap();
                    let frozen = match job.rate_cap {
                        Some(c) => c <= min_cap + eps,
                        None => false,
                    };
                    if frozen {
                        let rate = job.rate_cap.unwrap();
                        let route = job.route.clone();
                        self.jobs[i as usize].as_mut().unwrap().rate = rate;
                        for r in &route {
                            residual[r.index()] = (residual[r.index()] - rate).max(0.0);
                            load[r.index()] -= 1;
                        }
                    } else {
                        next.push(i);
                    }
                }
                unfrozen = next;
            } else {
                // Freeze jobs that cross a bottleneck resource at `share`.
                let mut bottleneck = vec![false; n_res];
                for r in 0..n_res {
                    if load[r] > 0 {
                        let s = residual[r] / load[r] as f64;
                        if s <= share + eps {
                            bottleneck[r] = true;
                        }
                    }
                }
                let mut next = Vec::with_capacity(unfrozen.len());
                let mut froze_any = false;
                for &i in &unfrozen {
                    let job = self.jobs[i as usize].as_ref().unwrap();
                    let hits = job.route.iter().any(|r| bottleneck[r.index()]);
                    if hits {
                        froze_any = true;
                        let rate = match job.rate_cap {
                            Some(c) => c.min(share),
                            None => share,
                        };
                        let route = job.route.clone();
                        self.jobs[i as usize].as_mut().unwrap().rate = rate;
                        for r in &route {
                            residual[r.index()] = (residual[r.index()] - rate).max(0.0);
                            load[r.index()] -= 1;
                        }
                    } else {
                        next.push(i);
                    }
                }
                // Safety net against numerical stalls: freeze everything at
                // the current share if no bottleneck was detected.
                if !froze_any {
                    for &i in &next {
                        let job = self.jobs[i as usize].as_mut().unwrap();
                        job.rate = match job.rate_cap {
                            Some(c) => c.min(share),
                            None => share,
                        };
                    }
                    next.clear();
                }
                unfrozen = next;
            }
        }

        // Re-index completions for jobs whose rate changed (or that never
        // had a prediction). Unchanged-rate jobs progress linearly, so
        // their absolute predictions stay exact across time advances.
        let now = self.now;
        for (slot, (j, old)) in self.jobs.iter_mut().zip(&old_rates).enumerate() {
            let Some(j) = j else { continue };
            if j.rate.to_bits() == old.to_bits() && j.pred.is_some() {
                continue;
            }
            let pred = if j.remaining <= Self::completion_eps(j.demand) {
                Some(now)
            } else if j.rate > 0.0 {
                Some(now + SimTime::from_secs_f64_ceil(j.remaining / j.rate))
            } else {
                None
            };
            j.pred = pred;
            if let Some(t) = pred {
                self.pred_heap.push(Reverse((t, j.seq, slot as u32)));
            }
        }
        // Bound stale-entry accumulation: compact when the heap holds far
        // more entries than live jobs.
        if self.pred_heap.len() > 2 * self.active_jobs + 64 {
            self.pred_heap.clear();
            for (slot, j) in self.jobs.iter().enumerate() {
                if let Some(j) = j {
                    if let Some(t) = j.pred {
                        self.pred_heap.push(Reverse((t, j.seq, slot as u32)));
                    }
                }
            }
        }
    }

    /// The next instant at which some job completes, if any job is active.
    ///
    /// Recomputes rates if the active set changed since the last call, then
    /// answers from the lazily-invalidated completion min-heap: amortized
    /// `O(log n)` against the reference scan's `O(n)`, which is what keeps
    /// request-level serving loops (hundreds of concurrent flows polled
    /// every step) off the engine's critical path.
    pub fn next_completion_time(&mut self) -> Option<SimTime> {
        if self.active_jobs == 0 {
            return None;
        }
        self.recompute_rates();
        while let Some(&Reverse((t, seq, slot))) = self.pred_heap.peek() {
            match self.jobs.get(slot as usize).and_then(Option::as_ref) {
                Some(j) if j.seq == seq && j.pred == Some(t) => return Some(t),
                _ => {
                    self.pred_heap.pop();
                }
            }
        }
        None
    }

    /// Reference implementation of [`FlowEngine::next_completion_time`]:
    /// the pre-heap linear scan over every active job. Kept for equivalence
    /// tests and the `bench_serving` heap-vs-scan comparison.
    pub fn next_completion_time_scan(&mut self) -> Option<SimTime> {
        if self.active_jobs == 0 {
            return None;
        }
        self.recompute_rates();
        let mut best: Option<SimTime> = None;
        for j in self.jobs.iter().flatten() {
            let t = if j.remaining <= Self::completion_eps(j.demand) {
                self.now
            } else if j.rate > 0.0 {
                self.now + SimTime::from_secs_f64_ceil(j.remaining / j.rate)
            } else {
                continue;
            };
            best = Some(match best {
                Some(b) => b.min(t),
                None => t,
            });
        }
        best
    }

    fn completion_eps(demand: f64) -> f64 {
        1e-9 + 1e-12 * demand.abs()
    }

    /// Advances simulated time to `t`, progressing every active job at its
    /// current fair rate, and returns the jobs that completed (in
    /// submission order).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TimeReversal`] if `t` is earlier than
    /// [`FlowEngine::now`].
    pub fn advance_to(&mut self, t: SimTime) -> Result<Vec<Completion>, SimError> {
        if t < self.now {
            return Err(SimError::TimeReversal { now: self.now, requested: t });
        }
        self.recompute_rates();
        let dt = (t - self.now).as_secs_f64();

        // Accumulate resource statistics for the elapsed window.
        if dt > 0.0 {
            let mut allocated: Vec<f64> = vec![0.0; self.resources.len()];
            for j in self.jobs.iter().flatten() {
                for r in &j.route {
                    allocated[r.index()] += j.rate;
                }
            }
            for (r, state) in self.resources.iter_mut().enumerate() {
                let rate = allocated[r].min(state.spec.capacity());
                state.stats.units_served += rate * dt;
                state.stats.busy_seconds += (rate / state.spec.capacity()) * dt;
                state.stats.observed_seconds += dt;
            }
        }

        // Progress jobs and collect completions.
        let mut done: Vec<(u64, JobId)> = Vec::new();
        for (i, slot) in self.jobs.iter_mut().enumerate() {
            if let Some(j) = slot {
                if dt > 0.0 {
                    j.remaining -= j.rate * dt;
                }
                let eps = 1e-9 + 1e-12 * j.demand.abs();
                if j.remaining <= eps {
                    done.push((j.seq, JobId { slot: i as u32, seq: j.seq }));
                }
            }
        }
        done.sort_by_key(|(seq, _)| *seq);
        let mut completions = Vec::with_capacity(done.len());
        for (_, id) in done {
            self.jobs[id.slot as usize] = None;
            self.free_slots.push(id.slot);
            self.active_jobs -= 1;
            self.rates_dirty = true;
            completions.push(Completion { job: id, at: t });
        }
        self.now = t;
        Ok(completions)
    }

    /// Runs until no jobs remain, returning the final time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] if active jobs exist but none can make
    /// progress (all rates zero), which indicates an engine bug or a
    /// zero-capacity configuration.
    pub fn run_to_idle(&mut self) -> Result<SimTime, SimError> {
        while self.active_jobs > 0 {
            let t = self.next_completion_time().ok_or(SimError::Stalled)?;
            self.advance_to(t)?;
        }
        Ok(self.now)
    }

    /// The current fair rate of a job, or `None` if it is not active.
    pub fn job_rate(&mut self, id: JobId) -> Option<f64> {
        self.recompute_rates();
        match self.jobs.get(id.slot as usize)? {
            Some(j) if j.seq == id.seq => Some(j.rate),
            _ => None,
        }
    }

    /// Remaining demand of a job, or `None` if it is not active.
    pub fn job_remaining(&self, id: JobId) -> Option<f64> {
        match self.jobs.get(id.slot as usize)? {
            Some(j) if j.seq == id.seq => Some(j.remaining),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceKind;

    fn link(eng: &mut FlowEngine, bw: f64) -> ResourceId {
        eng.add_resource(ResourceSpec::new("link", ResourceKind::Link, bw))
    }

    #[test]
    fn single_flow_exact_time() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 2e9);
        eng.submit(&[l], 1e9, None).unwrap();
        let end = eng.run_to_idle().unwrap();
        assert_eq!(end, SimTime::from_millis(500));
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 1e9);
        let a = eng.submit(&[l], 1e9, None).unwrap();
        eng.submit(&[l], 1e9, None).unwrap();
        assert!((eng.job_rate(a).unwrap() - 0.5e9).abs() < 1.0);
        let end = eng.run_to_idle().unwrap();
        assert_eq!(end, SimTime::from_secs(2));
    }

    #[test]
    fn unequal_flows_short_finishes_first_then_speedup() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 1e9);
        eng.submit(&[l], 0.5e9, None).unwrap();
        let b = eng.submit(&[l], 1.5e9, None).unwrap();
        // Short flow completes at t=1s (both at 0.5 GB/s). Long flow then has
        // 1.0e9 left at full rate -> finishes at 2s.
        let t1 = eng.next_completion_time().unwrap();
        assert_eq!(t1, SimTime::from_secs(1));
        let done = eng.advance_to(t1).unwrap();
        assert_eq!(done.len(), 1);
        assert!((eng.job_remaining(b).unwrap() - 1.0e9).abs() < 1.0);
        let end = eng.run_to_idle().unwrap();
        assert_eq!(end, SimTime::from_secs(2));
    }

    #[test]
    fn route_bottleneck_is_min_link() {
        let mut eng = FlowEngine::new();
        let fast = link(&mut eng, 10e9);
        let slow = link(&mut eng, 1e9);
        eng.submit(&[fast, slow], 2e9, None).unwrap();
        let end = eng.run_to_idle().unwrap();
        assert_eq!(end, SimTime::from_secs(2));
    }

    #[test]
    fn max_min_asymmetric_three_flows() {
        // Classic example: flows A (l1), B (l1+l2), C (l2).
        // l1 = 1 GB/s, l2 = 2 GB/s.
        // Fair shares: A = B = 0.5 on l1; C gets 2 - 0.5 = 1.5 on l2.
        let mut eng = FlowEngine::new();
        let l1 = link(&mut eng, 1e9);
        let l2 = link(&mut eng, 2e9);
        let a = eng.submit(&[l1], 1e18, None).unwrap();
        let b = eng.submit(&[l1, l2], 1e18, None).unwrap();
        let c = eng.submit(&[l2], 1e18, None).unwrap();
        assert!((eng.job_rate(a).unwrap() - 0.5e9).abs() < 1.0);
        assert!((eng.job_rate(b).unwrap() - 0.5e9).abs() < 1.0);
        assert!((eng.job_rate(c).unwrap() - 1.5e9).abs() < 1.0);
    }

    #[test]
    fn rate_cap_respected_and_redistributed() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 3e9);
        let a = eng.submit(&[l], 1e18, Some(0.5e9)).unwrap();
        let b = eng.submit(&[l], 1e18, None).unwrap();
        assert!((eng.job_rate(a).unwrap() - 0.5e9).abs() < 1.0);
        // B picks up the slack: 3 - 0.5 = 2.5 GB/s.
        assert!((eng.job_rate(b).unwrap() - 2.5e9).abs() < 1.0);
    }

    #[test]
    fn zero_amount_job_completes_immediately() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 1e9);
        eng.submit(&[l], 0.0, None).unwrap();
        let end = eng.run_to_idle().unwrap();
        assert_eq!(end, SimTime::ZERO);
    }

    #[test]
    fn submit_validation() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 1e9);
        assert!(matches!(eng.submit(&[], 1.0, None), Err(SimError::EmptyRoute)));
        assert!(matches!(
            eng.submit(&[ResourceId(9)], 1.0, None),
            Err(SimError::UnknownResource(9))
        ));
        assert!(matches!(eng.submit(&[l], -1.0, None), Err(SimError::InvalidAmount(_))));
        assert!(matches!(eng.submit(&[l], 1.0, Some(0.0)), Err(SimError::InvalidAmount(_))));
        assert!(matches!(eng.submit(&[l], f64::NAN, None), Err(SimError::InvalidAmount(_))));
    }

    #[test]
    fn time_reversal_rejected() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 1e9);
        eng.submit(&[l], 1e9, None).unwrap();
        eng.run_to_idle().unwrap();
        assert!(matches!(eng.advance_to(SimTime::ZERO), Err(SimError::TimeReversal { .. })));
    }

    #[test]
    fn stats_accumulate_served_units_and_busy_time() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 2e9);
        eng.submit(&[l], 1e9, None).unwrap();
        eng.run_to_idle().unwrap();
        // Idle second afterwards.
        let idle_until = eng.now() + SimTime::from_millis(500);
        eng.advance_to(idle_until).unwrap();
        let s = eng.stats(l);
        assert!((s.units_served - 1e9).abs() < 1e3);
        assert!((s.busy_seconds - 0.5).abs() < 1e-9);
        assert!((s.observed_seconds - 1.0).abs() < 1e-9);
        assert!((s.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn slots_are_reused_but_ids_stay_unique() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 1e9);
        let a = eng.submit(&[l], 1.0, None).unwrap();
        eng.run_to_idle().unwrap();
        let b = eng.submit(&[l], 1.0, None).unwrap();
        assert_ne!(a, b);
        assert_eq!(eng.job_remaining(a), None);
        assert!(eng.job_remaining(b).is_some());
    }

    #[test]
    fn simultaneous_completions_ordered_by_sequence() {
        // Pin for the heap refactor: when several jobs finish at exactly
        // the same SimTime, `advance_to` reports them in submission
        // (sequence) order regardless of heap pop order.
        let mut eng = FlowEngine::new();
        // Four equal jobs on four independent links: all complete at 1 s.
        let ids: Vec<JobId> = (0..4)
            .map(|_| {
                let l = link(&mut eng, 1e9);
                eng.submit(&[l], 1e9, None).unwrap()
            })
            .collect();
        let t = eng.next_completion_time().unwrap();
        assert_eq!(t, SimTime::from_secs(1));
        let done = eng.advance_to(t).unwrap();
        assert_eq!(done.len(), 4);
        let seqs: Vec<u64> = done.iter().map(|c| c.job.sequence()).collect();
        let expect: Vec<u64> = ids.iter().map(|id| id.sequence()).collect();
        assert_eq!(seqs, expect, "ties must resolve in submission order");
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn heap_matches_reference_scan() {
        // The heap-indexed next_completion_time must agree with the
        // retained linear scan through a full churn of submissions,
        // completions and rate redistributions.
        let mut eng = FlowEngine::new();
        let shared = link(&mut eng, 4e9);
        let private: Vec<ResourceId> = (0..8).map(|_| link(&mut eng, 1e9)).collect();
        for i in 0..32u64 {
            let amount = 1e8 * (1 + (i * 7) % 13) as f64;
            if i % 3 == 0 {
                eng.submit(&[shared, private[(i % 8) as usize]], amount, None).unwrap();
            } else {
                eng.submit(&[private[(i % 8) as usize]], amount, None).unwrap();
            }
        }
        let mut guard = 0;
        while eng.active_jobs() > 0 {
            let scan = eng.next_completion_time_scan();
            let heap = eng.next_completion_time();
            // The heap's absolute prediction rounds `remaining/rate` once;
            // the scan re-divides a drifted `remaining` and can land one
            // picosecond away. Anything beyond that is a real divergence.
            let (h, s) = (heap.unwrap().as_picos(), scan.unwrap().as_picos());
            assert!(h.abs_diff(s) <= 1, "heap {h} ps diverged from reference scan {s} ps");
            eng.advance_to(heap.unwrap()).unwrap();
            guard += 1;
            assert!(guard < 1000, "engine failed to drain");
        }
        assert_eq!(eng.next_completion_time(), None);
        assert_eq!(eng.next_completion_time_scan(), None);
    }

    #[test]
    fn heap_survives_partial_advances() {
        // Advance to instants strictly before any completion (as the task
        // executor does when a delay wakeup fires first): predictions must
        // remain valid without a rate recompute.
        let mut eng = FlowEngine::new();
        let l1 = link(&mut eng, 1e9);
        let l2 = link(&mut eng, 2e9);
        eng.submit(&[l1], 3e9, None).unwrap(); // completes at 3 s
        eng.submit(&[l2], 2e9, None).unwrap(); // completes at 1 s
        let first = eng.next_completion_time().unwrap();
        assert_eq!(first, SimTime::from_secs(1));
        // Partial advance: no completions, rates unchanged.
        eng.advance_to(SimTime::from_millis(250)).unwrap();
        assert_eq!(eng.next_completion_time().unwrap(), SimTime::from_secs(1));
        eng.advance_to(SimTime::from_millis(999)).unwrap();
        assert_eq!(eng.next_completion_time().unwrap(), SimTime::from_secs(1));
        let done = eng.advance_to(SimTime::from_secs(1)).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(eng.next_completion_time().unwrap(), SimTime::from_secs(3));
        assert_eq!(eng.run_to_idle().unwrap(), SimTime::from_secs(3));
    }

    #[test]
    fn many_flows_work_conservation() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 1e9);
        let total: f64 = (1..=10).map(|i| i as f64 * 1e8).sum();
        for i in 1..=10 {
            eng.submit(&[l], i as f64 * 1e8, None).unwrap();
        }
        let end = eng.run_to_idle().unwrap();
        // Work conservation: single busy link serves total units at capacity.
        assert!((end.as_secs_f64() - total / 1e9).abs() < 1e-6);
        assert!((eng.stats(l).units_served - total).abs() < 1e3);
    }
}
