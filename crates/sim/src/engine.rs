//! The flow engine: max-min fair sharing of resources among concurrent jobs.
//!
//! Every active job demands a fixed amount of work (bytes, FLOPs) across a
//! *route* of resources it occupies simultaneously. At any instant each job
//! receives a rate determined by **max-min fairness with rate caps**
//! (progressive filling): rates grow uniformly until a resource saturates or
//! a job hits its cap, those jobs freeze, and filling continues among the
//! rest. This is the classical *flow-level* network simulation — exact for
//! bandwidth-shared links and a good first-order model for memory ports,
//! storage channels and compute engines.
//!
//! Two interchangeable implementations sit behind [`FlowEngine`], selected
//! by [`FlowEngineImpl`]:
//!
//! * [`FlowEngineImpl::ProgressiveFilling`] (the default) recomputes exact
//!   max-min rates over all jobs × resources on every composition change —
//!   O(jobs × resources), bit-reproducible, and the equivalence oracle for
//!   everything else.
//! * [`FlowEngineImpl::VirtualTime`] exploits the invariance of completion
//!   *order* under fair sharing: per-resource virtual clocks advance with
//!   the active-job count and each job's completion is predicted once at
//!   submit, making submit/complete/cancel O(log n). See [`crate::fair`]'s
//!   module docs for the algorithm and its (bounded, conservative)
//!   divergence from the oracle on capped and multi-resource jobs.

use crate::error::SimError;
use crate::fair::FairEngine;
use crate::oracle::OracleEngine;
use crate::resource::{ResourceId, ResourceSpec, ResourceStats};
use crate::time::SimTime;

/// Identifier of an in-flight job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId {
    pub(crate) slot: u32,
    pub(crate) seq: u64,
}

impl JobId {
    /// Monotonic sequence number (unique across the engine's lifetime).
    pub fn sequence(self) -> u64 {
        self.seq
    }
}

/// A job that finished during [`FlowEngine::advance_to`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// The job that completed.
    pub job: JobId,
    /// The instant at which it completed (the time advanced to).
    pub at: SimTime,
}

/// A job is considered complete once its remaining demand drops below this
/// epsilon (absolute floor plus a term relative to the original demand).
pub(crate) fn completion_eps(demand: f64) -> f64 {
    1e-9 + 1e-12 * demand.abs()
}

/// Selects the rate-sharing algorithm behind a [`FlowEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FlowEngineImpl {
    /// Exact max-min progressive filling; O(jobs × resources) per
    /// composition change. Bit-reproducible — all golden pins are taken
    /// under this engine.
    #[default]
    ProgressiveFilling,
    /// Virtual-time fair sharing; O(log n) per composition change.
    /// Completion times are exact for single-resource uncapped jobs and
    /// conservative (never earlier than the oracle's) otherwise.
    VirtualTime,
}

#[derive(Debug)]
enum Inner {
    Oracle(OracleEngine),
    Fair(FairEngine),
}

/// Deterministic flow-level simulation engine.
///
/// # Examples
///
/// Two equal transfers sharing one link take twice as long as one:
///
/// ```
/// use hilos_sim::{FlowEngine, ResourceKind, ResourceSpec, SimTime};
///
/// let mut eng = FlowEngine::new();
/// let link = eng.add_resource(ResourceSpec::new("link", ResourceKind::Link, 1e9));
/// eng.submit(&[link], 1e9, None).unwrap();
/// eng.submit(&[link], 1e9, None).unwrap();
/// let end = eng.run_to_idle().unwrap();
/// assert_eq!(end, SimTime::from_secs(2));
/// ```
///
/// The same run under the O(log n) virtual-time engine:
///
/// ```
/// use hilos_sim::{FlowEngine, FlowEngineImpl, ResourceKind, ResourceSpec, SimTime};
///
/// let mut eng = FlowEngine::with_impl(FlowEngineImpl::VirtualTime);
/// let link = eng.add_resource(ResourceSpec::new("link", ResourceKind::Link, 1e9));
/// eng.submit(&[link], 1e9, None).unwrap();
/// eng.submit(&[link], 1e9, None).unwrap();
/// let end = eng.run_to_idle().unwrap();
/// assert_eq!(end, SimTime::from_secs(2));
/// ```
#[derive(Debug)]
pub struct FlowEngine {
    inner: Inner,
}

impl Default for FlowEngine {
    fn default() -> Self {
        FlowEngine::new()
    }
}

impl FlowEngine {
    /// Creates an empty engine at time zero, using the default
    /// (progressive-filling) implementation.
    pub fn new() -> Self {
        FlowEngine::with_impl(FlowEngineImpl::default())
    }

    /// Creates an empty engine at time zero with the given implementation.
    pub fn with_impl(sel: FlowEngineImpl) -> Self {
        let inner = match sel {
            FlowEngineImpl::ProgressiveFilling => Inner::Oracle(OracleEngine::new()),
            FlowEngineImpl::VirtualTime => Inner::Fair(FairEngine::new()),
        };
        FlowEngine { inner }
    }

    /// Which implementation this engine runs on.
    pub fn engine_impl(&self) -> FlowEngineImpl {
        match &self.inner {
            Inner::Oracle(_) => FlowEngineImpl::ProgressiveFilling,
            Inner::Fair(_) => FlowEngineImpl::VirtualTime,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        match &self.inner {
            Inner::Oracle(e) => e.now(),
            Inner::Fair(e) => e.now(),
        }
    }

    /// Number of jobs currently in flight.
    pub fn active_jobs(&self) -> usize {
        match &self.inner {
            Inner::Oracle(e) => e.active_jobs(),
            Inner::Fair(e) => e.active_jobs(),
        }
    }

    /// Registers a resource and returns its id.
    pub fn add_resource(&mut self, spec: ResourceSpec) -> ResourceId {
        match &mut self.inner {
            Inner::Oracle(e) => e.add_resource(spec),
            Inner::Fair(e) => e.add_resource(spec),
        }
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        match &self.inner {
            Inner::Oracle(e) => e.resource_count(),
            Inner::Fair(e) => e.resource_count(),
        }
    }

    /// The static description of a resource.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this engine.
    pub fn resource(&self, id: ResourceId) -> &ResourceSpec {
        match &self.inner {
            Inner::Oracle(e) => e.resource(id),
            Inner::Fair(e) => e.resource(id),
        }
    }

    /// Cumulative statistics of a resource since engine creation.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this engine.
    pub fn stats(&self, id: ResourceId) -> ResourceStats {
        match &self.inner {
            Inner::Oracle(e) => e.stats(id),
            Inner::Fair(e) => e.stats(id),
        }
    }

    /// Snapshot of all resource statistics, indexed by resource index.
    pub fn stats_snapshot(&self) -> Vec<ResourceStats> {
        match &self.inner {
            Inner::Oracle(e) => e.stats_snapshot(),
            Inner::Fair(e) => e.stats_snapshot(),
        }
    }

    /// Total entries (live + stale) in the lazily-invalidated completion
    /// index. Diagnostic: the engines compact once stale entries outnumber
    /// live jobs 2:1, so this stays within a small factor of
    /// [`FlowEngine::active_jobs`] no matter how churn-heavy the workload.
    pub fn completion_index_len(&self) -> usize {
        match &self.inner {
            Inner::Oracle(e) => e.completion_index_len(),
            Inner::Fair(e) => e.completion_index_len(),
        }
    }

    /// Submits a job demanding `amount` units across `route`.
    ///
    /// The job occupies every resource in `route` simultaneously; its rate
    /// is bounded by the max-min fair share on each and by `rate_cap` if
    /// given. Zero-amount jobs are accepted and complete at the next
    /// [`FlowEngine::advance_to`] boundary.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyRoute`] if `route` is empty.
    /// * [`SimError::UnknownResource`] if any id is out of range.
    /// * [`SimError::InvalidAmount`] if `amount` is negative or non-finite,
    ///   or `rate_cap` is non-positive or non-finite.
    pub fn submit(
        &mut self,
        route: &[ResourceId],
        amount: f64,
        rate_cap: Option<f64>,
    ) -> Result<JobId, SimError> {
        match &mut self.inner {
            Inner::Oracle(e) => e.submit(route, amount, rate_cap),
            Inner::Fair(e) => e.submit(route, amount, rate_cap),
        }
    }

    /// Removes a job before it completes, returning its remaining demand,
    /// or `None` if the job already completed or was cancelled. The freed
    /// capacity redistributes among the remaining jobs — this is how
    /// `core::serve` preempts requests and `core::cluster` migrates them
    /// mid-flight.
    pub fn cancel(&mut self, id: JobId) -> Option<f64> {
        match &mut self.inner {
            Inner::Oracle(e) => e.cancel(id),
            Inner::Fair(e) => e.cancel(id),
        }
    }

    /// The next instant at which some job completes, if any job is active.
    ///
    /// Answered from a lazily-invalidated completion index: amortized
    /// `O(log n)` against the reference scan's `O(n)`, which is what keeps
    /// request-level serving loops (hundreds of concurrent flows polled
    /// every step) off the engine's critical path.
    pub fn next_completion_time(&mut self) -> Option<SimTime> {
        match &mut self.inner {
            Inner::Oracle(e) => e.next_completion_time(),
            Inner::Fair(e) => e.next_completion_time(),
        }
    }

    /// Reference implementation of [`FlowEngine::next_completion_time`]:
    /// a linear scan over every active job. Kept for equivalence tests and
    /// the `bench_serving` heap-vs-scan and crossover comparisons.
    pub fn next_completion_time_scan(&mut self) -> Option<SimTime> {
        match &mut self.inner {
            Inner::Oracle(e) => e.next_completion_time_scan(),
            Inner::Fair(e) => e.next_completion_time_scan(),
        }
    }

    /// Advances simulated time to `t`, progressing every active job at its
    /// current fair rate, and returns the jobs that completed (in
    /// submission order).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TimeReversal`] if `t` is earlier than
    /// [`FlowEngine::now`].
    pub fn advance_to(&mut self, t: SimTime) -> Result<Vec<Completion>, SimError> {
        match &mut self.inner {
            Inner::Oracle(e) => e.advance_to(t),
            Inner::Fair(e) => e.advance_to(t),
        }
    }

    /// Runs until no jobs remain, returning the final time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Stalled`] if active jobs exist but none can make
    /// progress (all rates zero), which indicates an engine bug or a
    /// zero-capacity configuration.
    pub fn run_to_idle(&mut self) -> Result<SimTime, SimError> {
        match &mut self.inner {
            Inner::Oracle(e) => e.run_to_idle(),
            Inner::Fair(e) => e.run_to_idle(),
        }
    }

    /// The current fair rate of a job, or `None` if it is not active.
    pub fn job_rate(&mut self, id: JobId) -> Option<f64> {
        match &mut self.inner {
            Inner::Oracle(e) => e.job_rate(id),
            Inner::Fair(e) => e.job_rate(id),
        }
    }

    /// Remaining demand of a job, or `None` if it is not active.
    pub fn job_remaining(&self, id: JobId) -> Option<f64> {
        match &self.inner {
            Inner::Oracle(e) => e.job_remaining(id),
            Inner::Fair(e) => e.job_remaining(id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceKind;

    fn link(eng: &mut FlowEngine, bw: f64) -> ResourceId {
        eng.add_resource(ResourceSpec::new("link", ResourceKind::Link, bw))
    }

    #[test]
    fn single_flow_exact_time() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 2e9);
        eng.submit(&[l], 1e9, None).unwrap();
        let end = eng.run_to_idle().unwrap();
        assert_eq!(end, SimTime::from_millis(500));
    }

    #[test]
    fn two_flows_share_fairly() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 1e9);
        let a = eng.submit(&[l], 1e9, None).unwrap();
        eng.submit(&[l], 1e9, None).unwrap();
        assert!((eng.job_rate(a).unwrap() - 0.5e9).abs() < 1.0);
        let end = eng.run_to_idle().unwrap();
        assert_eq!(end, SimTime::from_secs(2));
    }

    #[test]
    fn unequal_flows_short_finishes_first_then_speedup() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 1e9);
        eng.submit(&[l], 0.5e9, None).unwrap();
        let b = eng.submit(&[l], 1.5e9, None).unwrap();
        // Short flow completes at t=1s (both at 0.5 GB/s). Long flow then has
        // 1.0e9 left at full rate -> finishes at 2s.
        let t1 = eng.next_completion_time().unwrap();
        assert_eq!(t1, SimTime::from_secs(1));
        let done = eng.advance_to(t1).unwrap();
        assert_eq!(done.len(), 1);
        assert!((eng.job_remaining(b).unwrap() - 1.0e9).abs() < 1.0);
        let end = eng.run_to_idle().unwrap();
        assert_eq!(end, SimTime::from_secs(2));
    }

    #[test]
    fn route_bottleneck_is_min_link() {
        let mut eng = FlowEngine::new();
        let fast = link(&mut eng, 10e9);
        let slow = link(&mut eng, 1e9);
        eng.submit(&[fast, slow], 2e9, None).unwrap();
        let end = eng.run_to_idle().unwrap();
        assert_eq!(end, SimTime::from_secs(2));
    }

    #[test]
    fn max_min_asymmetric_three_flows() {
        // Classic example: flows A (l1), B (l1+l2), C (l2).
        // l1 = 1 GB/s, l2 = 2 GB/s.
        // Fair shares: A = B = 0.5 on l1; C gets 2 - 0.5 = 1.5 on l2.
        let mut eng = FlowEngine::new();
        let l1 = link(&mut eng, 1e9);
        let l2 = link(&mut eng, 2e9);
        let a = eng.submit(&[l1], 1e18, None).unwrap();
        let b = eng.submit(&[l1, l2], 1e18, None).unwrap();
        let c = eng.submit(&[l2], 1e18, None).unwrap();
        assert!((eng.job_rate(a).unwrap() - 0.5e9).abs() < 1.0);
        assert!((eng.job_rate(b).unwrap() - 0.5e9).abs() < 1.0);
        assert!((eng.job_rate(c).unwrap() - 1.5e9).abs() < 1.0);
    }

    #[test]
    fn rate_cap_respected_and_redistributed() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 3e9);
        let a = eng.submit(&[l], 1e18, Some(0.5e9)).unwrap();
        let b = eng.submit(&[l], 1e18, None).unwrap();
        assert!((eng.job_rate(a).unwrap() - 0.5e9).abs() < 1.0);
        // B picks up the slack: 3 - 0.5 = 2.5 GB/s.
        assert!((eng.job_rate(b).unwrap() - 2.5e9).abs() < 1.0);
    }

    #[test]
    fn zero_amount_job_completes_immediately() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 1e9);
        eng.submit(&[l], 0.0, None).unwrap();
        let end = eng.run_to_idle().unwrap();
        assert_eq!(end, SimTime::ZERO);
    }

    #[test]
    fn submit_validation() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 1e9);
        assert!(matches!(eng.submit(&[], 1.0, None), Err(SimError::EmptyRoute)));
        assert!(matches!(
            eng.submit(&[ResourceId(9)], 1.0, None),
            Err(SimError::UnknownResource(9))
        ));
        assert!(matches!(eng.submit(&[l], -1.0, None), Err(SimError::InvalidAmount(_))));
        assert!(matches!(eng.submit(&[l], 1.0, Some(0.0)), Err(SimError::InvalidAmount(_))));
        assert!(matches!(eng.submit(&[l], f64::NAN, None), Err(SimError::InvalidAmount(_))));
    }

    #[test]
    fn time_reversal_rejected() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 1e9);
        eng.submit(&[l], 1e9, None).unwrap();
        eng.run_to_idle().unwrap();
        assert!(matches!(eng.advance_to(SimTime::ZERO), Err(SimError::TimeReversal { .. })));
    }

    #[test]
    fn stats_accumulate_served_units_and_busy_time() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 2e9);
        eng.submit(&[l], 1e9, None).unwrap();
        eng.run_to_idle().unwrap();
        // Idle second afterwards.
        let idle_until = eng.now() + SimTime::from_millis(500);
        eng.advance_to(idle_until).unwrap();
        let s = eng.stats(l);
        assert!((s.units_served - 1e9).abs() < 1e3);
        assert!((s.busy_seconds - 0.5).abs() < 1e-9);
        assert!((s.observed_seconds - 1.0).abs() < 1e-9);
        assert!((s.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn slots_are_reused_but_ids_stay_unique() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 1e9);
        let a = eng.submit(&[l], 1.0, None).unwrap();
        eng.run_to_idle().unwrap();
        let b = eng.submit(&[l], 1.0, None).unwrap();
        assert_ne!(a, b);
        assert_eq!(eng.job_remaining(a), None);
        assert!(eng.job_remaining(b).is_some());
    }

    #[test]
    fn simultaneous_completions_ordered_by_sequence() {
        // Pin for the heap refactor: when several jobs finish at exactly
        // the same SimTime, `advance_to` reports them in submission
        // (sequence) order regardless of heap pop order.
        let mut eng = FlowEngine::new();
        // Four equal jobs on four independent links: all complete at 1 s.
        let ids: Vec<JobId> = (0..4)
            .map(|_| {
                let l = link(&mut eng, 1e9);
                eng.submit(&[l], 1e9, None).unwrap()
            })
            .collect();
        let t = eng.next_completion_time().unwrap();
        assert_eq!(t, SimTime::from_secs(1));
        let done = eng.advance_to(t).unwrap();
        assert_eq!(done.len(), 4);
        let seqs: Vec<u64> = done.iter().map(|c| c.job.sequence()).collect();
        let expect: Vec<u64> = ids.iter().map(|id| id.sequence()).collect();
        assert_eq!(seqs, expect, "ties must resolve in submission order");
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn heap_matches_reference_scan() {
        // The heap-indexed next_completion_time must agree with the
        // retained linear scan through a full churn of submissions,
        // completions and rate redistributions.
        let mut eng = FlowEngine::new();
        let shared = link(&mut eng, 4e9);
        let private: Vec<ResourceId> = (0..8).map(|_| link(&mut eng, 1e9)).collect();
        for i in 0..32u64 {
            let amount = 1e8 * (1 + (i * 7) % 13) as f64;
            if i % 3 == 0 {
                eng.submit(&[shared, private[(i % 8) as usize]], amount, None).unwrap();
            } else {
                eng.submit(&[private[(i % 8) as usize]], amount, None).unwrap();
            }
        }
        let mut guard = 0;
        while eng.active_jobs() > 0 {
            let scan = eng.next_completion_time_scan();
            let heap = eng.next_completion_time();
            // The heap's absolute prediction rounds `remaining/rate` once;
            // the scan re-divides a drifted `remaining` and can land one
            // picosecond away. Anything beyond that is a real divergence.
            let (h, s) = (heap.unwrap().as_picos(), scan.unwrap().as_picos());
            assert!(h.abs_diff(s) <= 1, "heap {h} ps diverged from reference scan {s} ps");
            eng.advance_to(heap.unwrap()).unwrap();
            guard += 1;
            assert!(guard < 1000, "engine failed to drain");
        }
        assert_eq!(eng.next_completion_time(), None);
        assert_eq!(eng.next_completion_time_scan(), None);
    }

    #[test]
    fn heap_survives_partial_advances() {
        // Advance to instants strictly before any completion (as the task
        // executor does when a delay wakeup fires first): predictions must
        // remain valid without a rate recompute.
        let mut eng = FlowEngine::new();
        let l1 = link(&mut eng, 1e9);
        let l2 = link(&mut eng, 2e9);
        eng.submit(&[l1], 3e9, None).unwrap(); // completes at 3 s
        eng.submit(&[l2], 2e9, None).unwrap(); // completes at 1 s
        let first = eng.next_completion_time().unwrap();
        assert_eq!(first, SimTime::from_secs(1));
        // Partial advance: no completions, rates unchanged.
        eng.advance_to(SimTime::from_millis(250)).unwrap();
        assert_eq!(eng.next_completion_time().unwrap(), SimTime::from_secs(1));
        eng.advance_to(SimTime::from_millis(999)).unwrap();
        assert_eq!(eng.next_completion_time().unwrap(), SimTime::from_secs(1));
        let done = eng.advance_to(SimTime::from_secs(1)).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(eng.next_completion_time().unwrap(), SimTime::from_secs(3));
        assert_eq!(eng.run_to_idle().unwrap(), SimTime::from_secs(3));
    }

    #[test]
    fn many_flows_work_conservation() {
        let mut eng = FlowEngine::new();
        let l = link(&mut eng, 1e9);
        let total: f64 = (1..=10).map(|i| i as f64 * 1e8).sum();
        for i in 1..=10 {
            eng.submit(&[l], i as f64 * 1e8, None).unwrap();
        }
        let end = eng.run_to_idle().unwrap();
        // Work conservation: single busy link serves total units at capacity.
        assert!((end.as_secs_f64() - total / 1e9).abs() < 1e-6);
        assert!((eng.stats(l).units_served - total).abs() < 1e3);
    }

    // ---- virtual-time engine ----

    fn fair() -> FlowEngine {
        FlowEngine::with_impl(FlowEngineImpl::VirtualTime)
    }

    #[test]
    fn impl_selector_round_trips() {
        assert_eq!(FlowEngine::new().engine_impl(), FlowEngineImpl::ProgressiveFilling);
        assert_eq!(fair().engine_impl(), FlowEngineImpl::VirtualTime);
        assert_eq!(FlowEngineImpl::default(), FlowEngineImpl::ProgressiveFilling);
    }

    #[test]
    fn fair_single_flow_exact_time() {
        let mut eng = fair();
        let l = link(&mut eng, 2e9);
        eng.submit(&[l], 1e9, None).unwrap();
        assert_eq!(eng.run_to_idle().unwrap(), SimTime::from_millis(500));
    }

    #[test]
    fn fair_two_flows_share_fairly() {
        let mut eng = fair();
        let l = link(&mut eng, 1e9);
        let a = eng.submit(&[l], 1e9, None).unwrap();
        eng.submit(&[l], 1e9, None).unwrap();
        assert!((eng.job_rate(a).unwrap() - 0.5e9).abs() < 1.0);
        assert_eq!(eng.run_to_idle().unwrap(), SimTime::from_secs(2));
    }

    #[test]
    fn fair_unequal_flows_speedup_after_first_completion() {
        let mut eng = fair();
        let l = link(&mut eng, 1e9);
        eng.submit(&[l], 0.5e9, None).unwrap();
        let b = eng.submit(&[l], 1.5e9, None).unwrap();
        let t1 = eng.next_completion_time().unwrap();
        assert_eq!(t1, SimTime::from_secs(1));
        assert_eq!(eng.advance_to(t1).unwrap().len(), 1);
        assert!((eng.job_remaining(b).unwrap() - 1.0e9).abs() < 1.0);
        assert_eq!(eng.run_to_idle().unwrap(), SimTime::from_secs(2));
    }

    #[test]
    fn fair_route_bottleneck_is_min_link() {
        let mut eng = fair();
        let fast = link(&mut eng, 10e9);
        let slow = link(&mut eng, 1e9);
        eng.submit(&[fast, slow], 2e9, None).unwrap();
        assert_eq!(eng.run_to_idle().unwrap(), SimTime::from_secs(2));
    }

    #[test]
    fn fair_shares_are_conservative_on_shared_routes() {
        // Same topology as max_min_asymmetric_three_flows. The uniform
        // model gives C the share 2/2 = 1.0 GB/s instead of the oracle's
        // redistributed 1.5 GB/s: a *lower bound*, never an overestimate.
        let mut eng = fair();
        let l1 = link(&mut eng, 1e9);
        let l2 = link(&mut eng, 2e9);
        let a = eng.submit(&[l1], 1e18, None).unwrap();
        let b = eng.submit(&[l1, l2], 1e18, None).unwrap();
        let c = eng.submit(&[l2], 1e18, None).unwrap();
        assert!((eng.job_rate(a).unwrap() - 0.5e9).abs() < 1.0);
        assert!((eng.job_rate(b).unwrap() - 0.5e9).abs() < 1.0);
        assert!((eng.job_rate(c).unwrap() - 1.0e9).abs() < 1.0);
    }

    #[test]
    fn fair_rate_cap_respected() {
        // The cap binds; the uncapped job keeps its uniform share (the
        // oracle would redistribute the capped job's slack — see
        // rate_cap_respected_and_redistributed).
        let mut eng = fair();
        let l = link(&mut eng, 3e9);
        let a = eng.submit(&[l], 1e18, Some(0.5e9)).unwrap();
        let b = eng.submit(&[l], 1e18, None).unwrap();
        assert!((eng.job_rate(a).unwrap() - 0.5e9).abs() < 1.0);
        assert!((eng.job_rate(b).unwrap() - 1.5e9).abs() < 1.0);
    }

    #[test]
    fn fair_zero_amount_job_completes_immediately() {
        let mut eng = fair();
        let l = link(&mut eng, 1e9);
        eng.submit(&[l], 0.0, None).unwrap();
        assert_eq!(eng.run_to_idle().unwrap(), SimTime::ZERO);
        // Zero-amount on a multi-resource route too.
        let l2 = link(&mut eng, 1e9);
        eng.submit(&[l, l2], 0.0, None).unwrap();
        assert_eq!(eng.run_to_idle().unwrap(), SimTime::ZERO);
    }

    #[test]
    fn fair_submit_validation_matches_oracle() {
        let mut eng = fair();
        let l = link(&mut eng, 1e9);
        assert!(matches!(eng.submit(&[], 1.0, None), Err(SimError::EmptyRoute)));
        assert!(matches!(
            eng.submit(&[ResourceId(9)], 1.0, None),
            Err(SimError::UnknownResource(9))
        ));
        assert!(matches!(eng.submit(&[l], -1.0, None), Err(SimError::InvalidAmount(_))));
        assert!(matches!(eng.submit(&[l], 1.0, Some(0.0)), Err(SimError::InvalidAmount(_))));
        assert!(matches!(eng.submit(&[l], f64::NAN, None), Err(SimError::InvalidAmount(_))));
        assert!(matches!(eng.advance_to(SimTime::ZERO), Ok(v) if v.is_empty()));
    }

    #[test]
    fn fair_partial_advances_keep_predictions() {
        let mut eng = fair();
        let l1 = link(&mut eng, 1e9);
        let l2 = link(&mut eng, 2e9);
        eng.submit(&[l1], 3e9, None).unwrap(); // completes at 3 s
        eng.submit(&[l2], 2e9, None).unwrap(); // completes at 1 s
        assert_eq!(eng.next_completion_time().unwrap(), SimTime::from_secs(1));
        eng.advance_to(SimTime::from_millis(250)).unwrap();
        assert_eq!(eng.next_completion_time().unwrap(), SimTime::from_secs(1));
        eng.advance_to(SimTime::from_millis(999)).unwrap();
        assert_eq!(eng.next_completion_time().unwrap(), SimTime::from_secs(1));
        let done = eng.advance_to(SimTime::from_secs(1)).unwrap();
        assert_eq!(done.len(), 1);
        assert_eq!(eng.next_completion_time().unwrap(), SimTime::from_secs(3));
        assert_eq!(eng.run_to_idle().unwrap(), SimTime::from_secs(3));
    }

    #[test]
    fn fair_simultaneous_completions_ordered_by_sequence() {
        let mut eng = fair();
        let ids: Vec<JobId> = (0..4)
            .map(|_| {
                let l = link(&mut eng, 1e9);
                eng.submit(&[l], 1e9, None).unwrap()
            })
            .collect();
        let t = eng.next_completion_time().unwrap();
        assert_eq!(t, SimTime::from_secs(1));
        let done = eng.advance_to(t).unwrap();
        let seqs: Vec<u64> = done.iter().map(|c| c.job.sequence()).collect();
        let expect: Vec<u64> = ids.iter().map(|id| id.sequence()).collect();
        assert_eq!(seqs, expect, "ties must resolve in submission order");
    }

    #[test]
    fn fair_heap_matches_its_reference_scan() {
        let mut eng = fair();
        let shared = link(&mut eng, 4e9);
        let private: Vec<ResourceId> = (0..8).map(|_| link(&mut eng, 1e9)).collect();
        for i in 0..32u64 {
            let amount = 1e8 * (1 + (i * 7) % 13) as f64;
            if i % 3 == 0 {
                eng.submit(&[shared, private[(i % 8) as usize]], amount, None).unwrap();
            } else {
                eng.submit(&[private[(i % 8) as usize]], amount, None).unwrap();
            }
        }
        let mut guard = 0;
        while eng.active_jobs() > 0 {
            let scan = eng.next_completion_time_scan();
            let heap = eng.next_completion_time();
            let (h, s) = (heap.unwrap().as_picos(), scan.unwrap().as_picos());
            assert!(h.abs_diff(s) <= 1, "fair heap {h} ps diverged from its scan {s} ps");
            eng.advance_to(heap.unwrap()).unwrap();
            guard += 1;
            assert!(guard < 1000, "fair engine failed to drain");
        }
        assert_eq!(eng.next_completion_time(), None);
    }

    #[test]
    fn fair_stats_accumulate_like_oracle() {
        let mut eng = fair();
        let l = link(&mut eng, 2e9);
        eng.submit(&[l], 1e9, None).unwrap();
        eng.run_to_idle().unwrap();
        let idle_until = eng.now() + SimTime::from_millis(500);
        eng.advance_to(idle_until).unwrap();
        let s = eng.stats(l);
        assert!((s.units_served - 1e9).abs() < 1e3);
        assert!((s.busy_seconds - 0.5).abs() < 1e-9);
        assert!((s.observed_seconds - 1.0).abs() < 1e-9);
        assert!((s.utilization() - 0.5).abs() < 1e-9);
    }

    // ---- cancellation ----

    #[test]
    fn cancel_frees_capacity_for_both_impls() {
        for sel in [FlowEngineImpl::ProgressiveFilling, FlowEngineImpl::VirtualTime] {
            let mut eng = FlowEngine::with_impl(sel);
            let l = link(&mut eng, 1e9);
            let a = eng.submit(&[l], 1e9, None).unwrap();
            let b = eng.submit(&[l], 1e9, None).unwrap();
            // Both at 0.5 GB/s; advance half a second, then cancel A.
            eng.advance_to(SimTime::from_millis(500)).unwrap();
            let rem = eng.cancel(a).unwrap();
            assert!((rem - 0.75e9).abs() < 1e3, "{sel:?}: cancelled remaining {rem}");
            // B has 0.75e9 left at full rate: finishes 0.75 s later.
            assert_eq!(eng.run_to_idle().unwrap(), SimTime::from_millis(1250), "{sel:?}");
            assert_eq!(eng.cancel(b), None, "{sel:?}: completed job cannot be cancelled");
            assert_eq!(eng.cancel(a), None, "{sel:?}: double cancel returns None");
        }
    }

    #[test]
    fn cancel_custom_job_reanchors_survivors() {
        // A multi-resource job and a capped job share a link with a simple
        // job; cancelling them must hand their share back.
        for sel in [FlowEngineImpl::ProgressiveFilling, FlowEngineImpl::VirtualTime] {
            let mut eng = FlowEngine::with_impl(sel);
            let l1 = link(&mut eng, 1e9);
            let l2 = link(&mut eng, 1e9);
            let multi = eng.submit(&[l1, l2], 1e9, None).unwrap();
            let capped = eng.submit(&[l1], 1e9, Some(0.1e9)).unwrap();
            let simple = eng.submit(&[l1], 1e9, None).unwrap();
            eng.advance_to(SimTime::from_millis(100)).unwrap();
            assert!(eng.cancel(multi).is_some(), "{sel:?}");
            assert!(eng.cancel(capped).is_some(), "{sel:?}");
            // The simple job is now alone on l1: full capacity.
            assert!((eng.job_rate(simple).unwrap() - 1e9).abs() < 1.0, "{sel:?}");
            eng.run_to_idle().unwrap();
            assert_eq!(eng.active_jobs(), 0, "{sel:?}");
        }
    }

    // ---- completion-index compaction (stale-entry growth bound) ----

    #[test]
    fn churn_heavy_cancel_trace_keeps_completion_index_compact() {
        // Regression pin: a submit/cancel churn loop must not grow the
        // lazily-invalidated completion index without bound. With
        // compaction at stale > 2x live + 64, peak length stays within
        // 2*live + 64 entries (+1 for the probe ordering) for both impls.
        for sel in [FlowEngineImpl::ProgressiveFilling, FlowEngineImpl::VirtualTime] {
            let mut eng = FlowEngine::with_impl(sel);
            let l = link(&mut eng, 1e9);
            let live = 8usize;
            let mut ids: Vec<JobId> =
                (0..live).map(|_| eng.submit(&[l], 1e9, None).unwrap()).collect();
            let mut peak = 0usize;
            for round in 0..200 {
                // Cancel the oldest job, replace it, poll the index (as the
                // serving loop does every step).
                let victim = ids.remove(0);
                assert!(eng.cancel(victim).is_some());
                ids.push(eng.submit(&[l], 1e9 + round as f64, None).unwrap());
                let _ = eng.next_completion_time();
                peak = peak.max(eng.completion_index_len());
            }
            let bound = 2 * live + 64 + 1;
            assert!(
                peak <= bound,
                "{sel:?}: completion index peaked at {peak} entries (bound {bound})"
            );
            assert_eq!(eng.active_jobs(), live, "{sel:?}");
        }
    }
}
