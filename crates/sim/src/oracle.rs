//! The progressive-filling oracle: exact max-min fair sharing.
//!
//! This is the original `FlowEngine` implementation, retained verbatim as
//! the equivalence oracle for the virtual-time fast path in
//! [`crate::fair`] (the same pattern as `next_completion_time_scan`
//! inside this engine: the slow, obviously-correct formulation stays and
//! every fast path must match it). It recomputes **exact max-min rates**
//! (progressive filling with rate caps) over all jobs × resources on
//! every composition change — O(jobs × resources) per submit, completion
//! or cancel — which is what the fast engine exists to avoid.

use crate::engine::{completion_eps, Completion, JobId};
use crate::error::SimError;
use crate::resource::{ResourceId, ResourceSpec, ResourceStats};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone)]
struct JobState {
    seq: u64,
    demand: f64,
    remaining: f64,
    route: Vec<ResourceId>,
    rate_cap: Option<f64>,
    rate: f64,
    /// Predicted absolute completion instant under the current rate, or
    /// `None` if the job cannot progress (rate zero). Valid as long as the
    /// rate is unchanged: progress is linear, so an absolute prediction
    /// survives pure time advances without recomputation.
    pred: Option<SimTime>,
}

#[derive(Debug, Clone)]
struct ResourceState {
    spec: ResourceSpec,
    stats: ResourceStats,
}

/// Progressive-filling max-min engine (the equivalence oracle).
#[derive(Debug, Default)]
pub(crate) struct OracleEngine {
    resources: Vec<ResourceState>,
    jobs: Vec<Option<JobState>>,
    free_slots: Vec<u32>,
    next_seq: u64,
    now: SimTime,
    rates_dirty: bool,
    active_jobs: usize,
    /// Min-heap of `(predicted completion, seq, slot)` — the completion
    /// index behind `next_completion_time`. Entries are lazily
    /// invalidated: a rate change re-pushes a fresh entry and the stale
    /// one is discarded when it surfaces (its time no longer matches the
    /// job's stored prediction, or the job is gone).
    pred_heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
}

impl OracleEngine {
    pub(crate) fn new() -> Self {
        OracleEngine::default()
    }

    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    pub(crate) fn active_jobs(&self) -> usize {
        self.active_jobs
    }

    pub(crate) fn add_resource(&mut self, spec: ResourceSpec) -> ResourceId {
        let id = ResourceId(self.resources.len() as u32);
        self.resources.push(ResourceState { spec, stats: ResourceStats::default() });
        id
    }

    pub(crate) fn resource_count(&self) -> usize {
        self.resources.len()
    }

    pub(crate) fn resource(&self, id: ResourceId) -> &ResourceSpec {
        &self.resources[id.index()].spec
    }

    pub(crate) fn stats(&self, id: ResourceId) -> ResourceStats {
        self.resources[id.index()].stats
    }

    pub(crate) fn stats_snapshot(&self) -> Vec<ResourceStats> {
        self.resources.iter().map(|r| r.stats).collect()
    }

    /// Total entries in the lazily-invalidated completion index
    /// (live + stale). Diagnostic for the compaction regression tests.
    pub(crate) fn completion_index_len(&self) -> usize {
        self.pred_heap.len()
    }

    pub(crate) fn submit(
        &mut self,
        route: &[ResourceId],
        amount: f64,
        rate_cap: Option<f64>,
    ) -> Result<JobId, SimError> {
        if route.is_empty() {
            return Err(SimError::EmptyRoute);
        }
        for r in route {
            if r.index() >= self.resources.len() {
                return Err(SimError::UnknownResource(r.index()));
            }
        }
        if !amount.is_finite() || amount < 0.0 {
            return Err(SimError::InvalidAmount(amount));
        }
        if let Some(cap) = rate_cap {
            if !cap.is_finite() || cap <= 0.0 {
                return Err(SimError::InvalidAmount(cap));
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let state = JobState {
            seq,
            demand: amount,
            remaining: amount,
            route: route.to_vec(),
            rate_cap,
            rate: 0.0,
            pred: None,
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.jobs[s as usize] = Some(state);
                s
            }
            None => {
                self.jobs.push(Some(state));
                (self.jobs.len() - 1) as u32
            }
        };
        self.active_jobs += 1;
        self.rates_dirty = true;
        Ok(JobId { slot, seq })
    }

    /// Removes a job before it completes, returning its remaining demand.
    /// Returns `None` if the job is not active (already completed or
    /// cancelled). Freed capacity redistributes at the next recompute.
    pub(crate) fn cancel(&mut self, id: JobId) -> Option<f64> {
        match self.jobs.get(id.slot as usize)? {
            Some(j) if j.seq == id.seq => {
                let remaining = j.remaining.max(0.0);
                self.jobs[id.slot as usize] = None;
                self.free_slots.push(id.slot);
                self.active_jobs -= 1;
                self.rates_dirty = true;
                Some(remaining)
            }
            _ => None,
        }
    }

    /// Recomputes max-min fair rates (progressive filling with caps), then
    /// refreshes the completion index for every job whose rate changed.
    fn recompute_rates(&mut self) {
        if !self.rates_dirty {
            return;
        }
        self.rates_dirty = false;

        // Old rates, slot-aligned, to detect which predictions survive.
        let old_rates: Vec<f64> =
            self.jobs.iter().map(|j| j.as_ref().map_or(0.0, |job| job.rate)).collect();

        let n_res = self.resources.len();
        let mut residual: Vec<f64> = self.resources.iter().map(|r| r.spec.capacity()).collect();
        let mut load: Vec<u32> = vec![0; n_res];

        // Collect indices of unfrozen jobs.
        let mut unfrozen: Vec<u32> = Vec::with_capacity(self.active_jobs);
        for (i, j) in self.jobs.iter().enumerate() {
            if let Some(job) = j {
                for r in &job.route {
                    load[r.index()] += 1;
                }
                unfrozen.push(i as u32);
            }
        }

        // Progressive filling.
        while !unfrozen.is_empty() {
            // Bottleneck share among resources used by unfrozen jobs.
            let mut share = f64::INFINITY;
            for r in 0..n_res {
                if load[r] > 0 {
                    let s = (residual[r] / load[r] as f64).max(0.0);
                    if s < share {
                        share = s;
                    }
                }
            }
            debug_assert!(share.is_finite(), "unfrozen jobs must load some resource");

            // Jobs whose cap is below the share freeze at their cap first.
            let min_cap = unfrozen
                .iter()
                .filter_map(|&i| self.jobs[i as usize].as_ref().unwrap().rate_cap)
                .fold(f64::INFINITY, f64::min);

            let eps = 1e-12 * (1.0 + share.abs());
            if min_cap < share - eps {
                // Freeze every job whose cap is (close to) the minimum cap.
                let mut next = Vec::with_capacity(unfrozen.len());
                for &i in &unfrozen {
                    let job = self.jobs[i as usize].as_ref().unwrap();
                    let frozen = match job.rate_cap {
                        Some(c) => c <= min_cap + eps,
                        None => false,
                    };
                    if frozen {
                        let rate = job.rate_cap.unwrap();
                        let route = job.route.clone();
                        self.jobs[i as usize].as_mut().unwrap().rate = rate;
                        for r in &route {
                            residual[r.index()] = (residual[r.index()] - rate).max(0.0);
                            load[r.index()] -= 1;
                        }
                    } else {
                        next.push(i);
                    }
                }
                unfrozen = next;
            } else {
                // Freeze jobs that cross a bottleneck resource at `share`.
                let mut bottleneck = vec![false; n_res];
                for r in 0..n_res {
                    if load[r] > 0 {
                        let s = residual[r] / load[r] as f64;
                        if s <= share + eps {
                            bottleneck[r] = true;
                        }
                    }
                }
                let mut next = Vec::with_capacity(unfrozen.len());
                let mut froze_any = false;
                for &i in &unfrozen {
                    let job = self.jobs[i as usize].as_ref().unwrap();
                    let hits = job.route.iter().any(|r| bottleneck[r.index()]);
                    if hits {
                        froze_any = true;
                        let rate = match job.rate_cap {
                            Some(c) => c.min(share),
                            None => share,
                        };
                        let route = job.route.clone();
                        self.jobs[i as usize].as_mut().unwrap().rate = rate;
                        for r in &route {
                            residual[r.index()] = (residual[r.index()] - rate).max(0.0);
                            load[r.index()] -= 1;
                        }
                    } else {
                        next.push(i);
                    }
                }
                // Safety net against numerical stalls: freeze everything at
                // the current share if no bottleneck was detected.
                if !froze_any {
                    for &i in &next {
                        let job = self.jobs[i as usize].as_mut().unwrap();
                        job.rate = match job.rate_cap {
                            Some(c) => c.min(share),
                            None => share,
                        };
                    }
                    next.clear();
                }
                unfrozen = next;
            }
        }

        // Re-index completions for jobs whose rate changed (or that never
        // had a prediction). Unchanged-rate jobs progress linearly, so
        // their absolute predictions stay exact across time advances.
        let now = self.now;
        for (slot, (j, old)) in self.jobs.iter_mut().zip(&old_rates).enumerate() {
            let Some(j) = j else { continue };
            if j.rate.to_bits() == old.to_bits() && j.pred.is_some() {
                continue;
            }
            let pred = if j.remaining <= completion_eps(j.demand) {
                Some(now)
            } else if j.rate > 0.0 {
                Some(now + SimTime::from_secs_f64_ceil(j.remaining / j.rate))
            } else {
                None
            };
            j.pred = pred;
            if let Some(t) = pred {
                self.pred_heap.push(Reverse((t, j.seq, slot as u32)));
            }
        }
        // Bound stale-entry accumulation: compact when the heap holds far
        // more entries than live jobs.
        if self.pred_heap.len() > 2 * self.active_jobs + 64 {
            self.pred_heap.clear();
            for (slot, j) in self.jobs.iter().enumerate() {
                if let Some(j) = j {
                    if let Some(t) = j.pred {
                        self.pred_heap.push(Reverse((t, j.seq, slot as u32)));
                    }
                }
            }
        }
    }

    pub(crate) fn next_completion_time(&mut self) -> Option<SimTime> {
        if self.active_jobs == 0 {
            return None;
        }
        self.recompute_rates();
        while let Some(&Reverse((t, seq, slot))) = self.pred_heap.peek() {
            match self.jobs.get(slot as usize).and_then(Option::as_ref) {
                Some(j) if j.seq == seq && j.pred == Some(t) => return Some(t),
                _ => {
                    self.pred_heap.pop();
                }
            }
        }
        None
    }

    pub(crate) fn next_completion_time_scan(&mut self) -> Option<SimTime> {
        if self.active_jobs == 0 {
            return None;
        }
        self.recompute_rates();
        let mut best: Option<SimTime> = None;
        for j in self.jobs.iter().flatten() {
            let t = if j.remaining <= completion_eps(j.demand) {
                self.now
            } else if j.rate > 0.0 {
                self.now + SimTime::from_secs_f64_ceil(j.remaining / j.rate)
            } else {
                continue;
            };
            best = Some(match best {
                Some(b) => b.min(t),
                None => t,
            });
        }
        best
    }

    pub(crate) fn advance_to(&mut self, t: SimTime) -> Result<Vec<Completion>, SimError> {
        if t < self.now {
            return Err(SimError::TimeReversal { now: self.now, requested: t });
        }
        self.recompute_rates();
        let dt = (t - self.now).as_secs_f64();

        // Accumulate resource statistics for the elapsed window.
        if dt > 0.0 {
            let mut allocated: Vec<f64> = vec![0.0; self.resources.len()];
            for j in self.jobs.iter().flatten() {
                for r in &j.route {
                    allocated[r.index()] += j.rate;
                }
            }
            for (r, state) in self.resources.iter_mut().enumerate() {
                let rate = allocated[r].min(state.spec.capacity());
                state.stats.units_served += rate * dt;
                state.stats.busy_seconds += (rate / state.spec.capacity()) * dt;
                state.stats.observed_seconds += dt;
            }
        }

        // Progress jobs and collect completions.
        let mut done: Vec<(u64, JobId)> = Vec::new();
        for (i, slot) in self.jobs.iter_mut().enumerate() {
            if let Some(j) = slot {
                if dt > 0.0 {
                    j.remaining -= j.rate * dt;
                }
                let eps = completion_eps(j.demand);
                if j.remaining <= eps {
                    done.push((j.seq, JobId { slot: i as u32, seq: j.seq }));
                }
            }
        }
        done.sort_by_key(|(seq, _)| *seq);
        let mut completions = Vec::with_capacity(done.len());
        for (_, id) in done {
            self.jobs[id.slot as usize] = None;
            self.free_slots.push(id.slot);
            self.active_jobs -= 1;
            self.rates_dirty = true;
            completions.push(Completion { job: id, at: t });
        }
        self.now = t;
        Ok(completions)
    }

    pub(crate) fn run_to_idle(&mut self) -> Result<SimTime, SimError> {
        while self.active_jobs > 0 {
            let t = self.next_completion_time().ok_or(SimError::Stalled)?;
            self.advance_to(t)?;
        }
        Ok(self.now)
    }

    pub(crate) fn job_rate(&mut self, id: JobId) -> Option<f64> {
        self.recompute_rates();
        match self.jobs.get(id.slot as usize)? {
            Some(j) if j.seq == id.seq => Some(j.rate),
            _ => None,
        }
    }

    pub(crate) fn job_remaining(&self, id: JobId) -> Option<f64> {
        match self.jobs.get(id.slot as usize)? {
            Some(j) if j.seq == id.seq => Some(j.remaining),
            _ => None,
        }
    }
}
