//! Simulated resources.
//!
//! A resource is anything with a finite service capacity measured in
//! *units per second*: a PCIe link (bytes/s), a DRAM port (bytes/s), an SSD
//! read channel (bytes/s) or a compute engine (FLOP/s). Jobs traverse one
//! or more resources simultaneously and share each resource's capacity by
//! max-min fairness (see [`crate::FlowEngine`]).

use std::fmt;

/// Identifier of a resource registered with a [`crate::FlowEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub(crate) u32);

impl ResourceId {
    /// Raw index of the resource inside its engine.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Broad classification of a resource, used for reporting and energy
/// attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// An interconnect link (PCIe segment, NVLink, InfiniBand...).
    Link,
    /// A memory port (host DRAM, GPU HBM, FPGA DDR).
    Memory,
    /// A compute engine (GPU SMs, CPU cores, FPGA MACs).
    Compute,
    /// A storage read channel.
    StorageRead,
    /// A storage write channel.
    StorageWrite,
    /// Anything else.
    Other,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::Link => "link",
            ResourceKind::Memory => "memory",
            ResourceKind::Compute => "compute",
            ResourceKind::StorageRead => "storage-read",
            ResourceKind::StorageWrite => "storage-write",
            ResourceKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// Static description of a resource.
///
/// # Examples
///
/// ```
/// use hilos_sim::{ResourceKind, ResourceSpec};
///
/// let link = ResourceSpec::new("pcie4x16", ResourceKind::Link, 31.5e9);
/// assert_eq!(link.capacity(), 31.5e9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceSpec {
    name: String,
    kind: ResourceKind,
    capacity: f64,
}

impl ResourceSpec {
    /// Creates a new resource description.
    ///
    /// `capacity` is in units per second (bytes/s for links and memory,
    /// FLOP/s for compute).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not finite and strictly positive — a
    /// zero-capacity resource would stall every job routed through it.
    pub fn new(name: impl Into<String>, kind: ResourceKind, capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "resource capacity must be finite and positive, got {capacity}"
        );
        ResourceSpec { name: name.into(), kind, capacity }
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Classification of this resource.
    pub fn kind(&self) -> ResourceKind {
        self.kind
    }

    /// Service capacity in units per second.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }
}

/// Cumulative accounting for one resource.
///
/// The engine integrates, over simulated time, the total rate allocated to
/// jobs crossing the resource. From that it derives utilization and total
/// units served — the inputs of the utilization (Fig. 4c, 11b) and energy
/// (Fig. 17a) analyses.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceStats {
    /// Total units served (∫ allocated-rate dt).
    pub units_served: f64,
    /// Busy time in seconds, weighted by fractional usage
    /// (∫ allocated-rate / capacity dt).
    pub busy_seconds: f64,
    /// Wall-clock seconds over which the stats were accumulated.
    pub observed_seconds: f64,
}

impl ResourceStats {
    /// Average utilization over the observation window, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.observed_seconds <= 0.0 {
            0.0
        } else {
            (self.busy_seconds / self.observed_seconds).clamp(0.0, 1.0)
        }
    }

    /// Difference between two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &ResourceStats) -> ResourceStats {
        ResourceStats {
            units_served: self.units_served - earlier.units_served,
            busy_seconds: self.busy_seconds - earlier.busy_seconds,
            observed_seconds: self.observed_seconds - earlier.observed_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_accessors() {
        let r = ResourceSpec::new("hbm", ResourceKind::Memory, 1.555e12);
        assert_eq!(r.name(), "hbm");
        assert_eq!(r.kind(), ResourceKind::Memory);
        assert_eq!(r.capacity(), 1.555e12);
    }

    #[test]
    #[should_panic(expected = "capacity must be finite and positive")]
    fn zero_capacity_rejected() {
        let _ = ResourceSpec::new("bad", ResourceKind::Link, 0.0);
    }

    #[test]
    fn stats_utilization() {
        let s = ResourceStats { units_served: 100.0, busy_seconds: 0.5, observed_seconds: 2.0 };
        assert!((s.utilization() - 0.25).abs() < 1e-12);
        let zero = ResourceStats::default();
        assert_eq!(zero.utilization(), 0.0);
    }

    #[test]
    fn stats_since() {
        let a = ResourceStats { units_served: 10.0, busy_seconds: 1.0, observed_seconds: 2.0 };
        let b = ResourceStats { units_served: 25.0, busy_seconds: 1.5, observed_seconds: 4.0 };
        let d = b.since(&a);
        assert_eq!(d.units_served, 15.0);
        assert_eq!(d.busy_seconds, 0.5);
        assert_eq!(d.observed_seconds, 2.0);
    }

    #[test]
    fn display_impls() {
        assert_eq!(format!("{}", ResourceId(3)), "r3");
        assert_eq!(format!("{}", ResourceKind::StorageRead), "storage-read");
    }
}
