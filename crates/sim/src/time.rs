//! Simulation time.
//!
//! [`SimTime`] is an absolute instant measured in integer **picoseconds**
//! since the start of the simulation. Integer time keeps the event queue
//! totally ordered and the simulation bit-reproducible; picosecond
//! resolution keeps rounding error negligible even for single-byte
//! transfers on terabit links (1 byte at 100 GB/s is 10 ps).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// An absolute instant (or a duration) in simulated time.
///
/// `SimTime` is a thin wrapper over integer picoseconds. It implements the
/// arithmetic needed by the engine and converts to/from floating-point
/// seconds at the API boundary.
///
/// # Examples
///
/// ```
/// use hilos_sim::SimTime;
///
/// let t = SimTime::from_micros(3) + SimTime::from_nanos(500);
/// assert_eq!(t.as_nanos(), 3_500);
/// assert!((t.as_secs_f64() - 3.5e-6).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (simulation start).
    pub const ZERO: SimTime = SimTime(0);

    /// The maximum representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw picoseconds.
    pub const fn from_picos(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * PS_PER_SEC)
    }

    /// Creates a time from floating-point seconds, rounding to the nearest
    /// picosecond. Negative or non-finite inputs saturate to zero; values
    /// beyond the representable range saturate to [`SimTime::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        let ps = s * PS_PER_SEC as f64;
        if ps >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ps.round() as u64)
        }
    }

    /// Like [`SimTime::from_secs_f64`] but rounds *up* and never returns a
    /// zero duration for a positive input. The engine uses this when
    /// scheduling completions so that progress is always made.
    pub fn from_secs_f64_ceil(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        let ps = (s * PS_PER_SEC as f64).ceil();
        if ps >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime((ps as u64).max(1))
        }
    }

    /// Raw picosecond count.
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// Time in whole nanoseconds (truncated).
    pub const fn as_nanos(self) -> u64 {
        self.0 / 1_000
    }

    /// Time in whole microseconds (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Time in floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Time in floating-point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }

    /// Returns the larger of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// True if this is the zero instant.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self`; saturates in release.
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.4}s")
        } else if s >= 1e-3 {
            write!(f, "{:.4}ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.4}us", s * 1e6)
        } else {
            write!(f, "{}ns", self.as_nanos())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_picos(), 1_250_000_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
    }

    #[test]
    fn from_secs_f64_handles_garbage() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::ZERO.max(SimTime::ZERO));
        assert_eq!(SimTime::from_secs_f64(1e30), SimTime::MAX);
    }

    #[test]
    fn ceil_never_zero_for_positive() {
        let t = SimTime::from_secs_f64_ceil(1e-15);
        assert!(t > SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64_ceil(0.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime::MAX + SimTime::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO.saturating_sub(SimTime::from_secs(1)), SimTime::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.0000s");
        assert_eq!(format!("{}", SimTime::from_millis(5)), "5.0000ms");
        assert_eq!(format!("{}", SimTime::from_nanos(7)), "7ns");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [SimTime::from_secs(2), SimTime::ZERO, SimTime::from_nanos(5)];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_secs(2));
    }
}
