//! Task graphs: dependency-ordered work submitted to the flow engine.
//!
//! A [`TaskGraph`] is a DAG of [`Task`]s. Each task is a transfer (bytes
//! over a route of links), a compute (FLOPs on one engine), a fixed delay
//! (command latency, kernel launch) or a zero-cost milestone used as a
//! synchronization point. Tasks carry a free-form label whose *prefix up to
//! the first `':'`* is treated as a category for breakdown reporting
//! (e.g. `"loadw:layer3"` → category `loadw`).
//!
//! Tasks marked **background** (e.g. the delayed KV-cache spills of §4.3 of
//! the paper) contend for resources like any other task but are excluded
//! from the foreground makespan.

use crate::resource::ResourceId;
use crate::time::SimTime;
use std::fmt;

/// Identifier of a task inside one [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) u32);

impl TaskId {
    /// Index of the task inside its graph.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The work a task performs.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskKind {
    /// Move `bytes` across every resource in `route` simultaneously.
    Transfer {
        /// Payload size in bytes.
        bytes: f64,
        /// Resources crossed (links, memory ports, storage channels).
        route: Vec<ResourceId>,
        /// Optional per-task rate cap in bytes/s.
        rate_cap: Option<f64>,
    },
    /// Execute `ops` units of work on a single compute resource.
    Compute {
        /// Work amount (FLOPs or device-specific ops).
        ops: f64,
        /// The compute resource.
        resource: ResourceId,
    },
    /// Wait for a fixed duration (latency not tied to bandwidth).
    Delay {
        /// How long to wait.
        duration: SimTime,
    },
    /// Zero-cost synchronization point.
    Milestone,
}

/// One node of a [`TaskGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    label: String,
    kind: TaskKind,
    deps: Vec<TaskId>,
    background: bool,
}

impl Task {
    /// The task's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The label's category: the prefix up to the first `':'`, or the whole
    /// label if it contains none.
    pub fn category(&self) -> &str {
        match self.label.split_once(':') {
            Some((head, _)) => head,
            None => &self.label,
        }
    }

    /// The work this task performs.
    pub fn kind(&self) -> &TaskKind {
        &self.kind
    }

    /// Tasks that must complete before this one starts.
    pub fn deps(&self) -> &[TaskId] {
        &self.deps
    }

    /// Whether the task is excluded from the foreground makespan.
    pub fn is_background(&self) -> bool {
        self.background
    }
}

/// A DAG of tasks to execute on a [`crate::FlowEngine`].
///
/// # Examples
///
/// ```
/// use hilos_sim::{FlowEngine, ResourceKind, ResourceSpec, TaskGraph};
///
/// let mut eng = FlowEngine::new();
/// let link = eng.add_resource(ResourceSpec::new("link", ResourceKind::Link, 1e9));
/// let gpu = eng.add_resource(ResourceSpec::new("gpu", ResourceKind::Compute, 1e12));
///
/// let mut g = TaskGraph::new();
/// let load = g.transfer("loadw:l0", 1e9, vec![link], &[]);
/// let mm = g.compute("gemm:l0", 2e12, gpu, &[load]);
/// assert_eq!(g.len(), 2);
/// assert_eq!(g.task(mm).deps(), &[load]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskGraph {
    tasks: Vec<Task>,
}

impl TaskGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Number of tasks in the graph.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if the graph holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Returns the task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this graph.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Iterates over `(TaskId, &Task)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i as u32), t))
    }

    fn push(&mut self, label: impl Into<String>, kind: TaskKind, deps: &[TaskId]) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(Task { label: label.into(), kind, deps: deps.to_vec(), background: false });
        id
    }

    /// Adds a transfer task.
    pub fn transfer(
        &mut self,
        label: impl Into<String>,
        bytes: f64,
        route: Vec<ResourceId>,
        deps: &[TaskId],
    ) -> TaskId {
        self.push(label, TaskKind::Transfer { bytes, route, rate_cap: None }, deps)
    }

    /// Adds a transfer task with a per-task rate cap in bytes/s.
    pub fn transfer_capped(
        &mut self,
        label: impl Into<String>,
        bytes: f64,
        route: Vec<ResourceId>,
        rate_cap: f64,
        deps: &[TaskId],
    ) -> TaskId {
        self.push(label, TaskKind::Transfer { bytes, route, rate_cap: Some(rate_cap) }, deps)
    }

    /// Adds a compute task.
    pub fn compute(
        &mut self,
        label: impl Into<String>,
        ops: f64,
        resource: ResourceId,
        deps: &[TaskId],
    ) -> TaskId {
        self.push(label, TaskKind::Compute { ops, resource }, deps)
    }

    /// Adds a fixed-latency task.
    pub fn delay(
        &mut self,
        label: impl Into<String>,
        duration: SimTime,
        deps: &[TaskId],
    ) -> TaskId {
        self.push(label, TaskKind::Delay { duration }, deps)
    }

    /// Adds a zero-cost synchronization milestone.
    pub fn milestone(&mut self, label: impl Into<String>, deps: &[TaskId]) -> TaskId {
        self.push(label, TaskKind::Milestone, deps)
    }

    /// Marks a task as background: it still contends for resources but does
    /// not extend the foreground makespan.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_background(&mut self, id: TaskId) {
        self.tasks[id.index()].background = true;
    }

    /// Adds extra dependencies to an existing task.
    ///
    /// # Panics
    ///
    /// Panics if `id` or any dependency is out of range.
    pub fn add_deps(&mut self, id: TaskId, deps: &[TaskId]) {
        for d in deps {
            assert!(d.index() < self.tasks.len(), "dependency {d} out of range");
        }
        self.tasks[id.index()].deps.extend_from_slice(deps);
    }

    /// Grafts an independently-built sub-graph onto this graph.
    ///
    /// The first `externals.len()` tasks of `sub` must be
    /// [`TaskKind::Milestone`] placeholders standing for the given
    /// existing tasks of `self`, in order; they are dropped, not copied.
    /// Every remaining task of `sub` is appended in insertion order with
    /// its dependencies remapped (placeholders to the external tasks,
    /// internal ids to their new positions). Returns the new ids of the
    /// appended tasks, in `sub` insertion order.
    ///
    /// This is what makes sub-graphs buildable in parallel: each worker
    /// assembles its fragment against local ids, and grafting in a fixed
    /// order reproduces, task for task, the graph a serial build would
    /// have produced.
    ///
    /// # Panics
    ///
    /// Panics if `sub` has fewer tasks than `externals`, if a placeholder
    /// is not a milestone, or if an external id is out of range for
    /// `self`.
    pub fn graft(&mut self, sub: TaskGraph, externals: &[TaskId]) -> Vec<TaskId> {
        assert!(sub.tasks.len() >= externals.len(), "sub-graph smaller than its placeholder set");
        for e in externals {
            assert!(e.index() < self.tasks.len(), "external task {e} out of range");
        }
        let n_ext = externals.len();
        let mut map: Vec<TaskId> = Vec::with_capacity(sub.tasks.len());
        let mut appended = Vec::with_capacity(sub.tasks.len() - n_ext);
        for (i, mut task) in sub.tasks.into_iter().enumerate() {
            if i < n_ext {
                assert!(
                    matches!(task.kind, TaskKind::Milestone),
                    "placeholder {i} must be a milestone, got {:?}",
                    task.kind
                );
                map.push(externals[i]);
                continue;
            }
            for d in &mut task.deps {
                *d = map[d.index()];
            }
            let id = TaskId(self.tasks.len() as u32);
            self.tasks.push(task);
            map.push(id);
            appended.push(id);
        }
        appended
    }

    /// Total bytes across all transfer tasks (useful for traffic analyses).
    pub fn total_transfer_bytes(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| match &t.kind {
                TaskKind::Transfer { bytes, .. } => *bytes,
                _ => 0.0,
            })
            .sum()
    }

    /// Bytes transferred across tasks whose route includes `resource`.
    pub fn transfer_bytes_through(&self, resource: ResourceId) -> f64 {
        self.tasks
            .iter()
            .map(|t| match &t.kind {
                TaskKind::Transfer { bytes, route, .. } if route.contains(&resource) => *bytes,
                _ => 0.0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_splits_on_colon() {
        let mut g = TaskGraph::new();
        let a = g.milestone("loadkv:layer0:head3", &[]);
        let b = g.milestone("plain", &[]);
        assert_eq!(g.task(a).category(), "loadkv");
        assert_eq!(g.task(b).category(), "plain");
    }

    #[test]
    fn builder_wires_dependencies() {
        let mut g = TaskGraph::new();
        let a = g.delay("a", SimTime::from_nanos(1), &[]);
        let b = g.milestone("b", &[a]);
        let c = g.milestone("c", &[a, b]);
        assert_eq!(g.task(c).deps(), &[a, b]);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn background_flag() {
        let mut g = TaskGraph::new();
        let a = g.milestone("spill", &[]);
        assert!(!g.task(a).is_background());
        g.set_background(a);
        assert!(g.task(a).is_background());
    }

    #[test]
    fn traffic_accounting() {
        let mut g = TaskGraph::new();
        let r0 = ResourceId(0);
        let r1 = ResourceId(1);
        g.transfer("x", 100.0, vec![r0], &[]);
        g.transfer("y", 50.0, vec![r0, r1], &[]);
        g.compute("z", 1e9, r1, &[]);
        assert_eq!(g.total_transfer_bytes(), 150.0);
        assert_eq!(g.transfer_bytes_through(r0), 150.0);
        assert_eq!(g.transfer_bytes_through(r1), 50.0);
    }

    #[test]
    fn graft_reproduces_a_serial_build() {
        // Serial build: root, then two "device" fragments of two tasks.
        let link = ResourceId(0);
        let mut serial = TaskGraph::new();
        let root = serial.milestone("root", &[]);
        for d in 0..2 {
            let a = serial.transfer(format!("in:d{d}"), 10.0, vec![link], &[root]);
            serial.compute(format!("work:d{d}"), 1e6, link, &[a]);
        }

        // Parallel-style build: each fragment against a local placeholder.
        let mut grafted = TaskGraph::new();
        let root2 = grafted.milestone("root", &[]);
        let subs: Vec<TaskGraph> = (0..2)
            .map(|d| {
                let mut sub = TaskGraph::new();
                let ext = sub.milestone("ext:root", &[]);
                let a = sub.transfer(format!("in:d{d}"), 10.0, vec![link], &[ext]);
                sub.compute(format!("work:d{d}"), 1e6, link, &[a]);
                sub
            })
            .collect();
        for sub in subs {
            let ids = grafted.graft(sub, &[root2]);
            assert_eq!(ids.len(), 2);
        }
        assert_eq!(serial, grafted);
    }

    #[test]
    fn add_deps_appends() {
        let mut g = TaskGraph::new();
        let a = g.milestone("a", &[]);
        let b = g.milestone("b", &[]);
        let c = g.milestone("c", &[a]);
        g.add_deps(c, &[b]);
        assert_eq!(g.task(c).deps(), &[a, b]);
    }
}
