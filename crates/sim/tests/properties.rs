//! Property-based tests for the flow engine's fairness and conservation
//! invariants.

use hilos_sim::{execute, FlowEngine, ResourceKind, ResourceSpec, SimTime, TaskGraph};
use proptest::prelude::*;

fn engine_with_links(bws: &[f64]) -> (FlowEngine, Vec<hilos_sim::ResourceId>) {
    let mut eng = FlowEngine::new();
    let ids = bws
        .iter()
        .enumerate()
        .map(|(i, &b)| eng.add_resource(ResourceSpec::new(format!("l{i}"), ResourceKind::Link, b)))
        .collect();
    (eng, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A single shared link is work-conserving: N parallel flows finish in
    /// exactly (total bytes / bandwidth), regardless of flow sizes.
    #[test]
    fn work_conservation_single_link(
        sizes in prop::collection::vec(1.0e6..1.0e9f64, 1..12),
        bw in 1.0e8..1.0e11f64,
    ) {
        let (mut eng, r) = engine_with_links(&[bw]);
        let total: f64 = sizes.iter().sum();
        for s in &sizes {
            eng.submit(&[r[0]], *s, None).unwrap();
        }
        let end = eng.run_to_idle().unwrap();
        let expect = total / bw;
        prop_assert!((end.as_secs_f64() - expect).abs() / expect < 1e-6,
            "end={} expect={}", end.as_secs_f64(), expect);
    }

    /// Max-min allocation never oversubscribes any resource and gives every
    /// job a strictly positive rate.
    #[test]
    fn rates_feasible_and_positive(
        n_links in 1usize..5,
        n_jobs in 1usize..16,
        seed in any::<u64>(),
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bws: Vec<f64> = (0..n_links).map(|_| rng.random_range(1.0e8..1.0e10)).collect();
        let (mut eng, r) = engine_with_links(&bws);
        let mut jobs = Vec::new();
        for _ in 0..n_jobs {
            let len = rng.random_range(1..=n_links);
            let mut route: Vec<_> = r.clone();
            // Deterministic subset: rotate and truncate.
            let rot = rng.random_range(0..n_links);
            route.rotate_left(rot);
            route.truncate(len);
            jobs.push((route.clone(), eng.submit(&route, 1e9, None).unwrap()));
        }
        // Query rates and check feasibility.
        let mut per_resource = vec![0.0f64; n_links];
        for (route, id) in &jobs {
            let rate = eng.job_rate(*id).unwrap();
            prop_assert!(rate > 0.0, "job got zero rate");
            for res in route {
                per_resource[res.index()] += rate;
            }
        }
        for (i, used) in per_resource.iter().enumerate() {
            prop_assert!(*used <= bws[i] * (1.0 + 1e-9),
                "resource {i} oversubscribed: {used} > {}", bws[i]);
        }
    }

    /// Increasing a link's bandwidth never increases the makespan of a
    /// fixed workload.
    #[test]
    fn bandwidth_monotonicity(
        sizes in prop::collection::vec(1.0e6..1.0e9f64, 1..8),
        bw in 1.0e8..1.0e10f64,
        factor in 1.0..8.0f64,
    ) {
        let run = |b: f64| {
            let (mut eng, r) = engine_with_links(&[b]);
            let mut g = TaskGraph::new();
            let mut prev = None;
            for (i, s) in sizes.iter().enumerate() {
                let deps: Vec<_> = prev.into_iter().collect();
                prev = Some(g.transfer(format!("t{i}"), *s, vec![r[0]], &deps));
            }
            execute(&mut eng, &g).unwrap().makespan()
        };
        let slow = run(bw);
        let fast = run(bw * factor);
        prop_assert!(fast <= slow + SimTime::from_picos(sizes.len() as u64),
            "fast={fast} slow={slow}");
    }

    /// The engine is deterministic: the same workload produces the same
    /// timeline twice.
    #[test]
    fn determinism(
        sizes in prop::collection::vec(1.0e6..1.0e9f64, 1..10),
        bws in prop::collection::vec(1.0e8..1.0e10f64, 1..4),
    ) {
        let run = || {
            let (mut eng, r) = engine_with_links(&bws);
            let mut g = TaskGraph::new();
            for (i, s) in sizes.iter().enumerate() {
                let route = vec![r[i % r.len()]];
                g.transfer(format!("t{i}"), *s, route, &[]);
            }
            let tl = execute(&mut eng, &g).unwrap();
            (tl.makespan(), tl.finished_at())
        };
        prop_assert_eq!(run(), run());
    }

    /// A job's completion time is never better than its bottleneck bound
    /// (amount / min-capacity along the route) nor worse than the serial
    /// bound (all jobs through its route one at a time).
    #[test]
    fn completion_bounds(
        n_jobs in 1usize..10,
        bw in 1.0e8..1.0e10f64,
        size in 1.0e6..1.0e9f64,
    ) {
        let (mut eng, r) = engine_with_links(&[bw]);
        for _ in 0..n_jobs {
            eng.submit(&[r[0]], size, None).unwrap();
        }
        let end = eng.run_to_idle().unwrap().as_secs_f64();
        let lower = size / bw;
        let upper = size * n_jobs as f64 / bw;
        prop_assert!(end >= lower * (1.0 - 1e-9));
        prop_assert!(end <= upper * (1.0 + 1e-9) + 1e-12);
    }
}
