//! Differential equivalence between the virtual-time fast engine and the
//! progressive-filling oracle.
//!
//! Both engines are driven in lockstep through random interleavings of
//! submits, partial advances, completion-boundary advances and
//! cancellations, always advancing to the same instants. Two regimes:
//!
//! * **Uniform** (single-resource, uncapped jobs): the uniform share
//!   `capacity / n` *is* the max-min rate, so the engines must agree on
//!   completion times to within rounding tolerance and must never
//!   strongly invert a completion pair.
//! * **Mixed** (multi-resource routes, rate caps, zero-amount jobs): the
//!   virtual-time engine's rates are a lower bound on max-min rates, so
//!   its completion times must be *conservative* — never earlier than the
//!   oracle's beyond tolerance — and both engines must still drain.

use hilos_sim::{
    FlowEngine, FlowEngineImpl, JobId, ResourceId, ResourceKind, ResourceSpec, SimTime,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

struct TrackedJob {
    oracle_id: JobId,
    fair_id: JobId,
    demand: f64,
    done_oracle: Option<SimTime>,
    done_fair: Option<SimTime>,
    cancelled: bool,
}

/// Picosecond tolerance on a completion at absolute time `t`: one
/// microsecond absolute plus 1e-6 relative, covering the fair engine's
/// virtual-clock pop tolerance and the oracle's per-event rounding.
fn tol_ps(t: SimTime) -> u64 {
    1_000_000 + t.as_picos() / 1_000_000
}

fn fail(msg: String) -> TestCaseError {
    TestCaseError::Fail(msg)
}

/// Runs one random interleaving against both engines. `mixed` enables
/// multi-resource routes, rate caps and zero-amount jobs (the regime
/// where the fast engine is conservative rather than exact).
fn drive(seed: u64, n_ops: usize, mixed: bool) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_links = rng.random_range(1..5usize);
    let bws: Vec<f64> = (0..n_links).map(|_| rng.random_range(1.0e8..1.0e10)).collect();

    let mut oracle = FlowEngine::new();
    let mut fair = FlowEngine::with_impl(FlowEngineImpl::VirtualTime);
    let links: Vec<ResourceId> = bws
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            let spec = ResourceSpec::new(format!("l{i}"), ResourceKind::Link, b);
            let id = oracle.add_resource(spec.clone());
            let fid = fair.add_resource(spec);
            assert_eq!(id, fid, "engines must assign identical resource ids");
            id
        })
        .collect();

    let mut jobs: Vec<TrackedJob> = Vec::new();
    let mut by_seq: HashMap<u64, usize> = HashMap::new();

    let submit = |oracle: &mut FlowEngine,
                  fair: &mut FlowEngine,
                  jobs: &mut Vec<TrackedJob>,
                  by_seq: &mut HashMap<u64, usize>,
                  rng: &mut StdRng|
     -> Result<(), TestCaseError> {
        let amount = if mixed && rng.random_range(0..10u32) == 0 {
            0.0
        } else {
            rng.random_range(1.0e6..1.0e9)
        };
        let route: Vec<ResourceId> = if mixed && n_links >= 2 && rng.random_range(0..4u32) == 0 {
            let a = rng.random_range(0..n_links);
            let b = (a + 1 + rng.random_range(0..n_links - 1)) % n_links;
            vec![links[a], links[b]]
        } else {
            vec![links[rng.random_range(0..n_links)]]
        };
        let cap = if mixed && rng.random_range(0..4u32) == 0 {
            Some(rng.random_range(1.0e6..1.0e9))
        } else {
            None
        };
        let o =
            oracle.submit(&route, amount, cap).map_err(|e| fail(format!("oracle submit: {e}")))?;
        let f = fair.submit(&route, amount, cap).map_err(|e| fail(format!("fair submit: {e}")))?;
        prop_assert_eq!(o.sequence(), f.sequence(), "sequence numbers must stay in lockstep");
        by_seq.insert(o.sequence(), jobs.len());
        jobs.push(TrackedJob {
            oracle_id: o,
            fair_id: f,
            demand: amount,
            done_oracle: None,
            done_fair: None,
            cancelled: false,
        });
        Ok(())
    };

    let advance_both = |oracle: &mut FlowEngine,
                        fair: &mut FlowEngine,
                        jobs: &mut Vec<TrackedJob>,
                        by_seq: &HashMap<u64, usize>,
                        t: SimTime|
     -> Result<(), TestCaseError> {
        for c in oracle.advance_to(t).map_err(|e| fail(format!("oracle advance: {e}")))? {
            let idx = by_seq[&c.job.sequence()];
            prop_assert!(jobs[idx].done_oracle.is_none(), "oracle double completion");
            jobs[idx].done_oracle = Some(c.at);
        }
        for c in fair.advance_to(t).map_err(|e| fail(format!("fair advance: {e}")))? {
            let idx = by_seq[&c.job.sequence()];
            prop_assert!(jobs[idx].done_fair.is_none(), "fair double completion");
            jobs[idx].done_fair = Some(c.at);
        }
        Ok(())
    };

    let next_common = |oracle: &mut FlowEngine, fair: &mut FlowEngine| -> Option<SimTime> {
        match (oracle.next_completion_time(), fair.next_completion_time()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    };

    for _ in 0..n_ops {
        match rng.random_range(0..10u32) {
            0..=4 => submit(&mut oracle, &mut fair, &mut jobs, &mut by_seq, &mut rng)?,
            5..=6 => {
                if let Some(t) = next_common(&mut oracle, &mut fair) {
                    advance_both(&mut oracle, &mut fair, &mut jobs, &by_seq, t)?;
                }
            }
            7..=8 => {
                // Partial advance: both engines move to the same instant,
                // usually short of any completion.
                let dt = SimTime::from_secs_f64_ceil(rng.random_range(1.0e-6..1.0e-2));
                let t = oracle.now() + dt;
                prop_assert_eq!(oracle.now(), fair.now(), "engines drifted apart in time");
                advance_both(&mut oracle, &mut fair, &mut jobs, &by_seq, t)?;
            }
            _ => {
                // Cancel a job that is comfortably in flight in both
                // engines (not within tolerance of its completion, where
                // membership may legitimately differ for a picosecond).
                let candidates: Vec<usize> = jobs
                    .iter()
                    .enumerate()
                    .filter(|(_, j)| {
                        !j.cancelled && j.done_oracle.is_none() && j.done_fair.is_none()
                    })
                    .map(|(i, _)| i)
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let idx = candidates[rng.random_range(0..candidates.len())];
                let j = &jobs[idx];
                let (ro, rf) = (oracle.job_remaining(j.oracle_id), fair.job_remaining(j.fair_id));
                let (Some(ro), Some(rf)) = (ro, rf) else { continue };
                if ro <= 0.05 * j.demand || rf <= 0.05 * j.demand {
                    continue;
                }
                let co = oracle.cancel(j.oracle_id);
                let cf = fair.cancel(j.fair_id);
                prop_assert!(co.is_some() && cf.is_some(), "cancel must succeed in both engines");
                let (co, cf) = (co.unwrap(), cf.unwrap());
                let slack = 1.0e-6 * j.demand + 10.0;
                if mixed {
                    // Conservative: the fair engine never progressed the
                    // job faster than the oracle.
                    prop_assert!(
                        cf >= co - slack,
                        "fair remaining {cf} below oracle remaining {co} at cancel"
                    );
                } else {
                    prop_assert!(
                        (co - cf).abs() <= slack,
                        "cancel remaining diverged: oracle {co} vs fair {cf}"
                    );
                }
                jobs[idx].cancelled = true;
            }
        }
    }

    // Drain both engines.
    let mut guard = 0;
    while oracle.active_jobs() > 0 || fair.active_jobs() > 0 {
        let t = next_common(&mut oracle, &mut fair)
            .ok_or_else(|| fail("active jobs but no next completion".into()))?;
        advance_both(&mut oracle, &mut fair, &mut jobs, &by_seq, t)?;
        guard += 1;
        prop_assert!(guard < 20_000, "engines failed to drain");
    }

    // Every job either was cancelled or completed in both engines.
    for (i, j) in jobs.iter().enumerate() {
        if j.cancelled {
            prop_assert!(
                j.done_oracle.is_none() && j.done_fair.is_none(),
                "job {i} completed after cancellation"
            );
            continue;
        }
        let (Some(to), Some(tf)) = (j.done_oracle, j.done_fair) else {
            return Err(fail(format!(
                "job {i} incomplete: oracle {:?} fair {:?}",
                j.done_oracle, j.done_fair
            )));
        };
        let tol = tol_ps(to.max(tf));
        if mixed {
            prop_assert!(
                tf.as_picos() + tol >= to.as_picos(),
                "job {i}: fair completed at {tf} — earlier than oracle {to} beyond tolerance"
            );
        } else {
            prop_assert!(
                to.as_picos().abs_diff(tf.as_picos()) <= tol,
                "job {i}: completion diverged, oracle {to} vs fair {tf}"
            );
        }
    }

    // Uniform regime: completion order is invariant — no pair may be
    // strongly inverted (clearly ordered one way by the oracle, the other
    // way by the fast engine).
    if !mixed {
        let completed: Vec<(SimTime, SimTime)> = jobs
            .iter()
            .filter(|j| !j.cancelled)
            .map(|j| (j.done_oracle.unwrap(), j.done_fair.unwrap()))
            .collect();
        for i in 0..completed.len() {
            for k in (i + 1)..completed.len() {
                let (oi, fi) = completed[i];
                let (ok, fk) = completed[k];
                let tol = tol_ps(oi.max(ok));
                let oracle_before = oi.as_picos() + tol < ok.as_picos();
                let fair_after = fi.as_picos() > fk.as_picos() + tol;
                prop_assert!(
                    !(oracle_before && fair_after),
                    "completion order inverted: oracle {oi} < {ok}, fair {fi} > {fk}"
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fast_engine_exact_on_uniform_workloads(seed in any::<u64>(), n_ops in 10usize..60) {
        drive(seed, n_ops, false)?;
    }

    #[test]
    fn fast_engine_conservative_on_mixed_workloads(seed in any::<u64>(), n_ops in 10usize..60) {
        drive(seed, n_ops, true)?;
    }
}
