//! Cycle-level timing model of the attention accelerator.
//!
//! The hardware processes the context in 128-token blocks through a
//! four-unit pipeline (Fig. 7a). In steady state the block latency is the
//! maximum of:
//!
//! * **memory time** — the K and V tiles plus the score spill/reload
//!   traffic through the 4 GB on-board DDR4 (the dominant term: the design
//!   is DRAM-bandwidth bound, §5.4),
//! * **MAC time** — the two blocked GEMVs on `d_group × 128` MAC lanes,
//! * **softmax time** — two passes of exponentials at an unroll factor
//!   of 2 (§5.4).
//!
//! A single calibrated constant — the pipeline efficiency against raw DRAM
//! bandwidth — reproduces the measured Table 3 GFLOPS for all three
//! `d_group` configurations (see `EXPERIMENTS.md`).

use crate::kernel::BLOCK_TOKENS;

/// Configuration of the accelerator instance being modeled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelTimingModel {
    /// Clock frequency in Hz (296.05 MHz on the SmartSSD's KU15P).
    pub freq_hz: f64,
    /// Off-chip DRAM bandwidth in bytes/s (DDR4-2400 ×64 ⇒ 19.2 GB/s).
    pub dram_bw: f64,
    /// MAC units per query lane (128, saturating the DRAM interface §5.4).
    pub macs_per_lane: u32,
    /// Query-group size (1 for MHA; `heads/kv_heads` for GQA).
    pub d_group: u32,
    /// Exponential-unit loop unroll factor (2, §5.4).
    pub exp_unroll: u32,
    /// Fraction of raw DRAM bandwidth the pipeline sustains (calibrated to
    /// Table 3: ≈ 0.66 across all kernels).
    pub pipeline_efficiency: f64,
    /// Softmax passes over the score vector (2 = the paper's Algorithm 1;
    /// 3 = the conventional max/sum/normalize baseline it replaces).
    pub score_passes: u32,
    /// Fixed per-invocation overhead in seconds (OpenCL kernel launch +
    /// pipeline fill).
    pub launch_overhead_s: f64,
}

impl AccelTimingModel {
    /// The SmartSSD configuration of the paper for a given group size.
    ///
    /// # Panics
    ///
    /// Panics if `d_group` is zero.
    pub fn smartssd(d_group: u32) -> Self {
        assert!(d_group > 0, "d_group must be positive");
        AccelTimingModel {
            freq_hz: 296.05e6,
            dram_bw: 19.2e9,
            macs_per_lane: 128,
            d_group,
            exp_unroll: 2,
            pipeline_efficiency: 0.66,
            score_passes: 2,
            launch_overhead_s: 30e-6,
        }
    }

    /// Pads a token count to the AXI burst granularity of 32 (§5.4).
    pub fn padded_tokens(&self, s: u64) -> u64 {
        s.div_ceil(32) * 32
    }

    /// DRAM bytes touched per 128-token block: K tile + V tile (FP16) plus
    /// the score tile spilled after pass 1 and reloaded for pass 2 and the
    /// score-value product (FP32, `d_group` query lanes).
    pub fn bytes_per_block(&self, head_dim: u32) -> f64 {
        let kv = 2.0 * (BLOCK_TOKENS as f64) * head_dim as f64 * 2.0;
        // Each softmax pass spills and reloads the score tile once.
        let transactions = 2.0 * self.score_passes as f64;
        let scores = transactions * self.d_group as f64 * BLOCK_TOKENS as f64 * 4.0;
        kv + scores
    }

    /// FLOPs per block: the query-key and score-value GEMVs for every
    /// query in the group (2 FLOPs per MAC).
    pub fn flops_per_block(&self, head_dim: u32) -> f64 {
        4.0 * self.d_group as f64 * BLOCK_TOKENS as f64 * head_dim as f64
    }

    fn block_seconds(&self, head_dim: u32) -> f64 {
        let mem = self.bytes_per_block(head_dim) / (self.dram_bw * self.pipeline_efficiency);
        let mac_peak = 2.0 * self.macs_per_lane as f64 * self.d_group as f64 * self.freq_hz;
        let compute = self.flops_per_block(head_dim) / mac_peak;
        let softmax_cycles = self.score_passes as f64 * (self.d_group as f64 * BLOCK_TOKENS as f64)
            / self.exp_unroll as f64
            + 16.0;
        let softmax = softmax_cycles / self.freq_hz;
        mem.max(compute).max(softmax)
    }

    /// Time to run attention for `n_groups` query groups (batch × KV heads
    /// assigned to this device) over an `s`-token context.
    pub fn kernel_seconds(&self, s: u64, head_dim: u32, n_groups: u64) -> f64 {
        if s == 0 || n_groups == 0 {
            return 0.0;
        }
        let padded = self.padded_tokens(s);
        let blocks = padded.div_ceil(BLOCK_TOKENS as u64);
        self.launch_overhead_s + blocks as f64 * n_groups as f64 * self.block_seconds(head_dim)
    }

    /// Sustained arithmetic throughput in GFLOPS for a long-context kernel
    /// (the Table 3 "Peak Perf." column).
    pub fn sustained_gflops(&self, head_dim: u32) -> f64 {
        self.flops_per_block(head_dim) / self.block_seconds(head_dim) / 1e9
    }

    /// Sustained KV-cache consumption in bytes/s (the Fig. 12a kernel
    /// bars): how fast the kernel drains K/V data fed from storage.
    pub fn kv_bytes_per_sec(&self, head_dim: u32) -> f64 {
        let kv_bytes = 2.0 * (BLOCK_TOKENS as f64) * head_dim as f64 * 2.0;
        kv_bytes / self.block_seconds(head_dim)
    }

    /// Total DRAM traffic of a kernel invocation in bytes.
    pub fn dram_bytes(&self, s: u64, head_dim: u32, n_groups: u64) -> f64 {
        let padded = self.padded_tokens(s);
        let blocks = padded.div_ceil(BLOCK_TOKENS as u64);
        blocks as f64 * n_groups as f64 * self.bytes_per_block(head_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_gflops_shape() {
        // Paper Table 3: 11.9 / 46.8 / 56.3 GFLOPS for d_group 1 / 4 / 5.
        let g1 = AccelTimingModel::smartssd(1).sustained_gflops(128);
        let g4 = AccelTimingModel::smartssd(4).sustained_gflops(128);
        let g5 = AccelTimingModel::smartssd(5).sustained_gflops(128);
        assert!((g1 - 11.9).abs() / 11.9 < 0.10, "d=1: {g1}");
        assert!((g4 - 46.8).abs() / 46.8 < 0.10, "d=4: {g4}");
        assert!((g5 - 56.3).abs() / 56.3 < 0.10, "d=5: {g5}");
        // Monotone in d_group, sub-linear (shared-KV efficiency tapers).
        assert!(g4 > g1 && g5 > g4);
        assert!(g5 / g1 < 5.0);
    }

    #[test]
    fn kernels_exceed_ssd_p2p_bandwidth() {
        // Fig 12a: every kernel drains KV faster than the 3.2 GB/s SSD
        // feed, so the attention stays storage-bound.
        for d in [1, 4, 5] {
            let bw = AccelTimingModel::smartssd(d).kv_bytes_per_sec(128);
            assert!(bw > 3.2e9, "d_group={d}: {bw}");
        }
        // GQA kernels are slightly slower per KV byte than MHA.
        let mha = AccelTimingModel::smartssd(1).kv_bytes_per_sec(128);
        let gqa5 = AccelTimingModel::smartssd(5).kv_bytes_per_sec(128);
        assert!(gqa5 < mha);
        assert!(gqa5 > mha * 0.75, "GQA should be only slightly lower");
    }

    #[test]
    fn kernel_time_scales_linearly_with_context() {
        let m = AccelTimingModel::smartssd(1);
        let t32k = m.kernel_seconds(32 * 1024, 128, 1);
        let t64k = m.kernel_seconds(64 * 1024, 128, 1);
        let ratio = (t64k - m.launch_overhead_s) / (t32k - m.launch_overhead_s);
        assert!((ratio - 2.0).abs() < 0.01, "ratio={ratio}");
    }

    #[test]
    fn padding_to_axi_bursts() {
        let m = AccelTimingModel::smartssd(1);
        assert_eq!(m.padded_tokens(1), 32);
        assert_eq!(m.padded_tokens(32), 32);
        assert_eq!(m.padded_tokens(33), 64);
        // Padded sequences cost the same as their padded length.
        assert_eq!(m.kernel_seconds(97, 128, 1), m.kernel_seconds(128, 128, 1));
    }

    #[test]
    fn zero_work_costs_nothing() {
        let m = AccelTimingModel::smartssd(4);
        assert_eq!(m.kernel_seconds(0, 128, 16), 0.0);
        assert_eq!(m.kernel_seconds(1024, 128, 0), 0.0);
    }

    #[test]
    fn memory_bound_regime() {
        // At d_group=1 the block is memory-bound: raising DRAM bandwidth
        // raises throughput nearly proportionally.
        let mut fast = AccelTimingModel::smartssd(1);
        fast.dram_bw *= 2.0;
        let base = AccelTimingModel::smartssd(1).sustained_gflops(128);
        let doubled = fast.sustained_gflops(128);
        assert!(doubled / base > 1.9);
    }

    #[test]
    fn dram_traffic_accounting() {
        let m = AccelTimingModel::smartssd(1);
        // One block, one group: K+V = 128*128*2*2 = 65536 B, scores 2 KiB.
        let bytes = m.dram_bytes(128, 128, 1);
        assert!((bytes - (65536.0 + 2048.0)).abs() < 1.0);
    }
}
