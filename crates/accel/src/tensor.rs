//! Minimal row-major matrix containers for the functional kernels.
//!
//! The kernels only need 2-D row-major storage in `f32` (host/accumulator
//! precision) and [`F16`](crate::F16) (the storage format of the KV cache on
//! the device), plus conversions between the two.

use crate::f16::{f16_decode_lut, F16};
use std::fmt;

/// A dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl MatrixF32 {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        MatrixF32 { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a generator function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = MatrixF32::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        MatrixF32 { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets one element.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// A row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Rounds every element to binary16.
    pub fn to_f16(&self) -> MatrixF16 {
        MatrixF16 {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| F16::from_f32(v)).collect(),
        }
    }

    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &MatrixF32) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }
}

impl fmt::Display for MatrixF32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MatrixF32({}x{})", self.rows, self.cols)
    }
}

/// A dense row-major binary16 matrix — the device storage format.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixF16 {
    rows: usize,
    cols: usize,
    data: Vec<F16>,
}

impl MatrixF16 {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        MatrixF16 { rows, cols, data: vec![F16::ZERO; rows * cols] }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at(&self, r: usize, c: usize) -> F16 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets one element.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: F16) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// A row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[F16] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major data.
    pub fn as_slice(&self) -> &[F16] {
        &self.data
    }

    /// Widens every element to `f32` (table-driven, bit-identical to
    /// per-element [`F16::to_f32`]).
    pub fn to_f32(&self) -> MatrixF32 {
        let lut = f16_decode_lut();
        MatrixF32 {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| lut[v.to_bits() as usize]).collect(),
        }
    }

    /// Batch-decodes rows `[row_start, row_start + n_rows)` into `dst`
    /// (row-major, `n_rows * cols` values) through the shared decode LUT.
    ///
    /// This is the kernels' scratch-arena fill: one pass, no per-element
    /// branching, no allocation. Bit-identical to calling
    /// [`F16::to_f32`] per element.
    ///
    /// # Panics
    ///
    /// Panics if the row range is out of bounds or `dst` is shorter than
    /// `n_rows * cols`.
    pub fn decode_rows_into(&self, row_start: usize, n_rows: usize, dst: &mut [f32]) {
        assert!(
            row_start + n_rows <= self.rows,
            "row range {row_start}..{} out of bounds ({} rows)",
            row_start + n_rows,
            self.rows
        );
        let n = n_rows * self.cols;
        assert!(dst.len() >= n, "destination too small: {} < {n}", dst.len());
        let lut = f16_decode_lut();
        let src = &self.data[row_start * self.cols..row_start * self.cols + n];
        for (d, s) in dst[..n].iter_mut().zip(src) {
            *d = lut[s.to_bits() as usize];
        }
    }

    /// Batch-decodes one row into `dst` (at least `cols` values) through
    /// the shared decode LUT.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds or `dst` is shorter than `cols`.
    pub fn decode_row_into(&self, r: usize, dst: &mut [f32]) {
        self.decode_rows_into(r, 1, dst);
    }

    /// Appends a row (KV-cache append of a newly decoded token).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[F16]) {
        assert_eq!(row.len(), self.cols, "row length must equal cols");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Storage size in bytes (2 bytes per element).
    pub fn bytes(&self) -> usize {
        self.data.len() * 2
    }
}

impl fmt::Display for MatrixF16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MatrixF16({}x{})", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_accessors() {
        let m = MatrixF32::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.at(1, 2), 12.0);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn f16_round_trip_preserves_representable() {
        let m = MatrixF32::from_fn(3, 3, |r, c| (r as f32 - c as f32) * 0.5);
        let h = m.to_f16();
        assert_eq!(h.to_f32(), m);
        assert_eq!(h.bytes(), 18);
    }

    #[test]
    fn f16_rounding_visible() {
        let m = MatrixF32::from_vec(1, 1, vec![1.0 + f32::powi(2.0, -12)]);
        let h = m.to_f16();
        assert_eq!(h.at(0, 0).to_f32(), 1.0);
    }

    #[test]
    fn decode_rows_into_matches_to_f32() {
        let m = MatrixF32::from_fn(5, 7, |r, c| (r as f32 - 2.0) * 0.3 + c as f32 * 1.7).to_f16();
        let full = m.to_f32();
        let mut buf = vec![0.0f32; 3 * 7];
        m.decode_rows_into(1, 3, &mut buf);
        for r in 0..3 {
            for c in 0..7 {
                assert_eq!(buf[r * 7 + c].to_bits(), full.at(1 + r, c).to_bits());
            }
        }
        let mut row = vec![0.0f32; 7];
        m.decode_row_into(4, &mut row);
        assert_eq!(row, full.row(4));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn decode_rows_into_bounds_checked() {
        let m = MatrixF16::zeros(2, 3);
        let mut buf = vec![0.0f32; 6];
        m.decode_rows_into(1, 2, &mut buf);
    }

    #[test]
    #[should_panic(expected = "destination too small")]
    fn decode_rows_into_checks_dst() {
        let m = MatrixF16::zeros(2, 3);
        let mut buf = vec![0.0f32; 2];
        m.decode_rows_into(0, 1, &mut buf);
    }

    #[test]
    fn push_row_grows() {
        let mut m = MatrixF16::zeros(0, 2);
        m.push_row(&[F16::ONE, F16::ZERO]);
        m.push_row(&[F16::ZERO, F16::ONE]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.at(1, 1), F16::ONE);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = MatrixF32::from_vec(1, 2, vec![1.0, 2.0]);
        let b = MatrixF32::from_vec(1, 2, vec![1.5, 1.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_checked() {
        let m = MatrixF32::zeros(1, 1);
        let _ = m.at(0, 1);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn diff_requires_same_shape() {
        let a = MatrixF32::zeros(1, 2);
        let b = MatrixF32::zeros(2, 1);
        let _ = a.max_abs_diff(&b);
    }
}
