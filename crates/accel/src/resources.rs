//! FPGA resource, power and timing-closure model (Table 3).
//!
//! The SmartSSD carries a Kintex UltraScale+ KU15P. The user-logic
//! partition must fit the four attention units plus the shell; resource
//! consumption grows with `d_group` because the MAC array, exponential
//! units and per-query buffers replicate per query lane, with a
//! super-linear LUT term for routing congestion. Coefficients are
//! calibrated against the paper's Table 3 (see `EXPERIMENTS.md` for
//! model-vs-paper numbers).

use std::error::Error;
use std::fmt;

/// Resource totals of an FPGA part.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpgaPart {
    /// Part name.
    pub name: &'static str,
    /// 6-input LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// 36 Kb block RAMs.
    pub bram36: u64,
    /// UltraRAM blocks.
    pub uram: u64,
    /// DSP48 slices.
    pub dsp: u64,
}

impl FpgaPart {
    /// The Kintex UltraScale+ KU15P on the SmartSSD.
    pub fn ku15p() -> Self {
        FpgaPart {
            name: "xcku15p",
            luts: 522_720,
            ffs: 1_045_440,
            bram36: 984,
            uram: 128,
            dsp: 1_968,
        }
    }
}

/// Errors from the resource model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ResourceError {
    /// A configuration exceeds the part's capacity.
    OverBudget {
        /// Which resource overflowed.
        resource: &'static str,
        /// Required amount.
        required: u64,
        /// Available amount.
        available: u64,
    },
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::OverBudget { resource, required, available } => {
                write!(f, "design does not fit: needs {required} {resource}, part has {available}")
            }
        }
    }
}

impl Error for ResourceError {}

/// Resource / power / frequency report for one accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceReport {
    /// Query-group size of the configuration.
    pub d_group: u32,
    /// LUTs used.
    pub luts: u64,
    /// Flip-flops used.
    pub ffs: u64,
    /// BRAM36 used.
    pub bram36: u64,
    /// URAM used.
    pub uram: u64,
    /// DSP slices used.
    pub dsp: u64,
    /// Utilization fractions in `[0,1]`, same order: LUT/FF/BRAM/URAM/DSP.
    pub utilization: [f64; 5],
    /// Total on-chip power in watts (static + dynamic + transceivers).
    pub power_watts: f64,
    /// Achieved clock frequency in Hz.
    pub freq_hz: f64,
}

/// The resource model: estimates utilization for a `d_group` configuration
/// on a given part.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceModel {
    part: FpgaPart,
}

impl ResourceModel {
    /// Creates a model for the given part.
    pub fn new(part: FpgaPart) -> Self {
        ResourceModel { part }
    }

    /// Model for the SmartSSD's KU15P.
    pub fn smartssd() -> Self {
        ResourceModel::new(FpgaPart::ku15p())
    }

    /// The modeled part.
    pub fn part(&self) -> FpgaPart {
        self.part
    }

    /// Estimates the report for a `d_group` configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ResourceError::OverBudget`] if any resource exceeds the
    /// part (e.g. the >2,000-DSP softmax scaling of §7.2).
    pub fn report(&self, d_group: u32) -> Result<ResourceReport, ResourceError> {
        assert!(d_group > 0, "d_group must be positive");
        let d = d_group as u64;

        // Shell + per-lane unit costs, calibrated to Table 3:
        // LUTs grow super-linearly (transpose muxing + routing congestion).
        let luts = 180_000 + 20_000 * d + 2_500 * d * d;
        let ffs = luts + luts * 45 / 100; // pipeline registers track LUTs
        let bram36 = 480 + 22 * d; // K/KT/V tiles + per-lane score FIFOs
        let uram = 12; // shell DMA buffers only
        let dsp = 128 + 70 * d; // MAC array + exp units (unroll 2)

        let checks: [(&'static str, u64, u64); 5] = [
            ("LUTs", luts, self.part.luts),
            ("FFs", ffs, self.part.ffs),
            ("BRAM36", bram36, self.part.bram36),
            ("URAM", uram, self.part.uram),
            ("DSPs", dsp, self.part.dsp),
        ];
        for (resource, required, available) in checks {
            if required > available {
                return Err(ResourceError::OverBudget { resource, required, available });
            }
        }

        let utilization = [
            luts as f64 / self.part.luts as f64,
            ffs as f64 / self.part.ffs as f64,
            bram36 as f64 / self.part.bram36 as f64,
            uram as f64 / self.part.uram as f64,
            dsp as f64 / self.part.dsp as f64,
        ];

        // Power: static + transceiver floor, plus dynamic terms tracking
        // logic, DSP and BRAM activity (percent-scaled).
        let power_watts = 5.0
            + 0.08 * (utilization[0] * 100.0)
            + 0.20 * (utilization[4] * 100.0)
            + 0.03 * (utilization[2] * 100.0);

        // The SmartSSD power envelope caps the clock at ~300 MHz; the
        // design closes at 296.05 MHz for every configuration that fits.
        let freq_hz = 296.05e6;

        Ok(ResourceReport {
            d_group,
            luts,
            ffs,
            bram36,
            uram,
            dsp,
            utilization,
            power_watts,
            freq_hz,
        })
    }

    /// Largest `d_group` that fits the part — the practical GQA limit.
    pub fn max_d_group(&self) -> u32 {
        let mut d = 1;
        while self.report(d + 1).is_ok() {
            d += 1;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 3 utilization percentages (LUT, FF, BRAM, URAM, DSP) and
    /// power for d_group 1, 4, 5.
    const TABLE3: [(u32, [f64; 5], f64); 3] = [
        (1, [38.76, 28.57, 51.02, 9.38, 10.06], 11.25),
        (4, [56.60, 39.70, 59.30, 9.38, 20.27], 15.39),
        (5, [67.40, 46.15, 58.49, 9.38, 27.79], 16.08),
    ];

    #[test]
    fn matches_table3_within_tolerance() {
        let model = ResourceModel::smartssd();
        for (d, util_pct, power) in TABLE3 {
            let r = model.report(d).unwrap();
            for (i, name) in ["LUT", "FF", "BRAM", "URAM", "DSP"].iter().enumerate() {
                let modeled = r.utilization[i] * 100.0;
                let paper = util_pct[i];
                let rel = (modeled - paper).abs() / paper;
                assert!(rel < 0.16, "d={d} {name}: model {modeled:.2}% vs paper {paper:.2}%");
            }
            let rel_p = (r.power_watts - power).abs() / power;
            assert!(rel_p < 0.12, "d={d} power: model {:.2} vs paper {power}", r.power_watts);
        }
    }

    #[test]
    fn frequency_meets_closure() {
        let r = ResourceModel::smartssd().report(5).unwrap();
        assert!((r.freq_hz - 296.05e6).abs() < 1.0);
        assert!(r.freq_hz < 300e6, "capped by the SmartSSD power envelope");
    }

    #[test]
    fn oversized_group_rejected() {
        let model = ResourceModel::smartssd();
        // LUTs overflow well before d_group = 12.
        let err = model.report(12).unwrap_err();
        assert!(matches!(err, ResourceError::OverBudget { resource: "LUTs", .. }));
    }

    #[test]
    fn max_d_group_is_stable() {
        let model = ResourceModel::smartssd();
        let max = model.max_d_group();
        assert!(model.report(max).is_ok());
        assert!(model.report(max + 1).is_err());
        assert!((5..=11).contains(&max), "max={max}");
    }

    #[test]
    fn utilization_monotone_in_d_group() {
        let model = ResourceModel::smartssd();
        let r1 = model.report(1).unwrap();
        let r5 = model.report(5).unwrap();
        for i in 0..5 {
            assert!(r5.utilization[i] >= r1.utilization[i]);
        }
        assert!(r5.power_watts > r1.power_watts);
    }

    #[test]
    fn full_16_device_deployment_power() {
        // §6.2: a 16-accelerator deployment at d_group=5 draws ≈258 W,
        // comparable to a single mid-range GPU.
        let r = ResourceModel::smartssd().report(5).unwrap();
        let total = 16.0 * r.power_watts;
        assert!(total > 200.0 && total < 300.0, "total={total}");
    }
}
