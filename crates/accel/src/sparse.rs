//! InstAttention-style lossy sparse KV retrieval (§7.1, Fig. 18c).
//!
//! InstAttention meets in-storage resource constraints by retrieving only
//! the top-scoring fraction of the KV cache (default 1/8) per query, using
//! *approximate* score estimation. This module reproduces that scheme so
//! the accuracy experiment can contrast it with HILOS's lossless kernel:
//! exact attention restricted to the estimated top-k tokens, with optional
//! deterministic estimation noise standing in for the quantized score
//! approximation of the real system.

use crate::kernel::{attention_kernel, AttentionInputs, KernelError};
use crate::tensor::{MatrixF16, MatrixF32};

/// Deterministic noise model for the approximate score estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimationNoise {
    /// Standard-deviation-like amplitude added to each estimated score.
    pub amplitude: f32,
    /// Seed of the internal xorshift generator.
    pub seed: u64,
}

fn xorshift(state: &mut u64) -> f32 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    // Uniform in [-1, 1).
    ((*state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0
}

/// Runs lossy sparse attention: estimates scores, keeps the top
/// `keep_fraction` of tokens (per query group, by the max score across the
/// group), and computes exact attention over the kept subset.
///
/// `keep_fraction` is clamped to `(0, 1]`; at 1.0 this degenerates to the
/// exact kernel. The host tail (if any) is always kept — buffered entries
/// are recent and cheap.
///
/// # Errors
///
/// Propagates [`KernelError`] from the underlying kernel.
pub fn sparse_topk_attention(
    inputs: &AttentionInputs<'_>,
    keep_fraction: f64,
    noise: Option<EstimationNoise>,
) -> Result<MatrixF32, KernelError> {
    let keep_fraction = keep_fraction.clamp(1e-9, 1.0);
    let s = inputs.keys.rows();
    let g = inputs.queries.rows();
    let d = inputs.queries.cols();
    if s == 0 {
        return attention_kernel(inputs);
    }

    // --- Score estimation (the lossy part) ---
    // Queries are LUT-decoded once and each key row once (shared across
    // the whole GQA group), instead of re-widening both per element —
    // same arithmetic order, so the estimated scores (and therefore the
    // selection) are bit-identical to the per-element path.
    let mut q_dec = vec![0.0f32; g * d];
    inputs.queries.decode_rows_into(0, g, &mut q_dec);
    let mut k_row = vec![0.0f32; d];
    let mut noise_state = noise.map(|n| (n.seed | 1, n.amplitude));
    let mut est = vec![f32::NEG_INFINITY; s];
    for j in 0..s {
        let masked = inputs.valid.map(|v| !v[j]).unwrap_or(false);
        if masked {
            continue;
        }
        inputs.keys.decode_row_into(j, &mut k_row);
        let mut best = f32::NEG_INFINITY;
        for qi in 0..g {
            let q = &q_dec[qi * d..(qi + 1) * d];
            let dot: f32 = q.iter().zip(&k_row).map(|(&a, &b)| a * b).sum();
            best = best.max(dot * inputs.scale);
        }
        if let Some((state, amp)) = noise_state.as_mut() {
            best += xorshift(state) * *amp;
        }
        est[j] = best;
    }

    // --- Top-k selection ---
    let keep = ((s as f64 * keep_fraction).ceil() as usize).clamp(1, s);
    let mut order: Vec<usize> = (0..s).collect();
    order.sort_by(|&a, &b| est[b].partial_cmp(&est[a]).unwrap_or(std::cmp::Ordering::Equal));
    let mut selected: Vec<usize> = order.into_iter().take(keep).collect();
    selected.sort_unstable();

    // --- Exact attention over the retrieved subset ---
    let mut k_sel = MatrixF16::zeros(0, d);
    let mut v_sel = MatrixF16::zeros(0, d);
    let mut valid_sel = Vec::with_capacity(selected.len());
    for &j in &selected {
        k_sel.push_row(inputs.keys.row(j));
        v_sel.push_row(inputs.values.row(j));
        valid_sel.push(inputs.valid.map(|v| v[j]).unwrap_or(true));
    }
    attention_kernel(&AttentionInputs {
        queries: inputs.queries,
        keys: &k_sel,
        values: &v_sel,
        valid: Some(&valid_sel),
        scale: inputs.scale,
        host_tail: inputs.host_tail,
    })
}

/// Traffic ratio of sparse retrieval: fraction of the stored KV bytes read
/// per decode step (the compression knob InstAttention trades accuracy
/// for).
pub fn sparse_read_fraction(keep_fraction: f64) -> f64 {
    keep_fraction.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(g: usize, s: usize, d: usize, seed: u64) -> (MatrixF16, MatrixF16, MatrixF16) {
        let mut state = seed | 1;
        let mut next = move || xorshift(&mut state);
        let q = MatrixF32::from_fn(g, d, |_, _| next()).to_f16();
        let k = MatrixF32::from_fn(s, d, |_, _| next()).to_f16();
        let v = MatrixF32::from_fn(s, d, |_, _| next()).to_f16();
        (q, k, v)
    }

    #[test]
    fn keep_all_matches_exact() {
        let (q, k, v) = toy(2, 100, 16, 3);
        let inputs = AttentionInputs {
            queries: &q,
            keys: &k,
            values: &v,
            valid: None,
            scale: 0.25,
            host_tail: None,
        };
        let exact = attention_kernel(&inputs).unwrap();
        let sparse = sparse_topk_attention(&inputs, 1.0, None).unwrap();
        assert!(exact.max_abs_diff(&sparse) < 1e-6);
    }

    #[test]
    fn lossy_retrieval_deviates_from_exact() {
        let (q, k, v) = toy(1, 512, 32, 9);
        let inputs = AttentionInputs {
            queries: &q,
            keys: &k,
            values: &v,
            valid: None,
            scale: 0.4,
            host_tail: None,
        };
        let exact = attention_kernel(&inputs).unwrap();
        let sparse = sparse_topk_attention(&inputs, 1.0 / 8.0, None).unwrap();
        // With near-uniform scores, dropping 7/8 of the context must move
        // the output measurably.
        assert!(exact.max_abs_diff(&sparse) > 1e-3);
    }

    #[test]
    fn dominant_token_survives_compression() {
        let d = 8;
        let g = 1;
        let s = 256;
        let (q, mut k, v) = toy(g, s, d, 11);
        // Plant a needle aligned with the query at position 77.
        for c in 0..d {
            k.set(77, c, q.at(0, c));
        }
        let inputs = AttentionInputs {
            queries: &q,
            keys: &k,
            values: &v,
            valid: None,
            scale: 4.0, // sharpen: the needle dominates softmax
            host_tail: None,
        };
        let exact = attention_kernel(&inputs).unwrap();
        let sparse = sparse_topk_attention(&inputs, 1.0 / 8.0, None).unwrap();
        assert!(exact.max_abs_diff(&sparse) < 1e-2);
    }

    #[test]
    fn estimation_noise_is_deterministic() {
        let (q, k, v) = toy(1, 256, 16, 13);
        let inputs = AttentionInputs {
            queries: &q,
            keys: &k,
            values: &v,
            valid: None,
            scale: 0.3,
            host_tail: None,
        };
        let n = EstimationNoise { amplitude: 0.5, seed: 42 };
        let a = sparse_topk_attention(&inputs, 0.125, Some(n)).unwrap();
        let b = sparse_topk_attention(&inputs, 0.125, Some(n)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn masked_tokens_never_selected() {
        let (q, k, v) = toy(1, 64, 8, 17);
        let valid: Vec<bool> = (0..64).map(|j| j < 32).collect();
        let inputs = AttentionInputs {
            queries: &q,
            keys: &k,
            values: &v,
            valid: Some(&valid),
            scale: 0.3,
            host_tail: None,
        };
        // keep half: exactly the valid half is eligible.
        let sparse = sparse_topk_attention(&inputs, 0.5, None).unwrap();
        let k32 = {
            let kf = k.to_f32();
            MatrixF32::from_fn(32, 8, |r, c| kf.at(r, c)).to_f16()
        };
        let v32 = {
            let vf = v.to_f32();
            MatrixF32::from_fn(32, 8, |r, c| vf.at(r, c)).to_f16()
        };
        let exact_valid = attention_kernel(&AttentionInputs {
            queries: &q,
            keys: &k32,
            values: &v32,
            valid: None,
            scale: 0.3,
            host_tail: None,
        })
        .unwrap();
        assert!(sparse.max_abs_diff(&exact_valid) < 1e-4);
    }

    #[test]
    fn read_fraction_clamped() {
        assert_eq!(sparse_read_fraction(0.125), 0.125);
        assert_eq!(sparse_read_fraction(2.0), 1.0);
        assert_eq!(sparse_read_fraction(-1.0), 0.0);
    }
}
