//! HLS-style analytic performance estimator (§5.1).
//!
//! The paper ships a performance estimator "based on the cycle counts and
//! the clock frequency obtained from HLS" and reports a Pearson
//! correlation of 0.93 against measured hardware throughput across 4K–32K
//! sequence lengths for the three kernels of Table 3. This module is that
//! estimator: an *idealized* cycle count from loop trip counts (no
//! pipeline-efficiency calibration, ideal DRAM), to be correlated against
//! the calibrated timing model standing in for the hardware measurement.

use crate::kernel::BLOCK_TOKENS;
use crate::timing::AccelTimingModel;

/// Idealized loop-trip-count estimator for the attention kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerformanceEstimator {
    /// Clock frequency reported by HLS, in Hz.
    pub freq_hz: f64,
    /// AXI data width in bytes per cycle (512-bit ⇒ 64 B).
    pub axi_bytes_per_cycle: f64,
}

impl PerformanceEstimator {
    /// Estimator matching the paper's HLS configuration.
    pub fn smartssd() -> Self {
        PerformanceEstimator { freq_hz: 296.05e6, axi_bytes_per_cycle: 64.0 }
    }

    /// Estimated cycles for one 128-token block at the given head dimension
    /// and query-group size: sequential sum of the unit trip counts (the
    /// HLS report view, without DATAFLOW overlap).
    pub fn cycles_per_block(&self, head_dim: u32, d_group: u32) -> f64 {
        let block = BLOCK_TOKENS as f64;
        let d = head_dim as f64;
        let g = d_group as f64;
        // Load K tile + V tile over the AXI bus.
        let load = 2.0 * block * d * 2.0 / self.axi_bytes_per_cycle;
        // Online transpose: one tile pass.
        let transpose = block;
        // Two GEMVs on 128 MACs per lane, II=1.
        let gemv = 2.0 * g * block * d / 128.0 / g.max(1.0);
        // Two softmax passes, exp unroll 2, plus the reduction trees.
        let softmax = 2.0 * g * block / 2.0 + 16.0;
        load + transpose + gemv + softmax
    }

    /// Estimated kernel seconds for an `s`-token context and `n_groups`
    /// query groups.
    pub fn kernel_seconds(&self, s: u64, head_dim: u32, d_group: u32, n_groups: u64) -> f64 {
        if s == 0 || n_groups == 0 {
            return 0.0;
        }
        let padded = s.div_ceil(32) * 32;
        let blocks = padded.div_ceil(BLOCK_TOKENS as u64);
        blocks as f64 * n_groups as f64 * self.cycles_per_block(head_dim, d_group) / self.freq_hz
    }

    /// Estimated KV-drain throughput in bytes/s.
    pub fn kv_bytes_per_sec(&self, head_dim: u32, d_group: u32) -> f64 {
        let kv_bytes = 2.0 * BLOCK_TOKENS as f64 * head_dim as f64 * 2.0;
        kv_bytes / (self.cycles_per_block(head_dim, d_group) / self.freq_hz)
    }
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0.0 for degenerate inputs (length < 2 or zero variance).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "sample lengths differ");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Runs the §5.1 validation: correlates estimator and timing-model
/// throughput across sequence lengths 4K–32K for the three Table 3
/// kernels. Returns `(pearson_r, samples)` where each sample is
/// `(d_group, s, estimated_tokens_per_s, modeled_tokens_per_s)`.
pub fn estimator_correlation() -> (f64, Vec<(u32, u64, f64, f64)>) {
    let est = PerformanceEstimator::smartssd();
    let mut samples = Vec::new();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for d_group in [1u32, 4, 5] {
        let model = AccelTimingModel::smartssd(d_group);
        for s in [4096u64, 8192, 12288, 16384, 24576, 32768] {
            let est_t = 1.0 / est.kernel_seconds(s, 128, d_group, 1);
            let mod_t = 1.0 / model.kernel_seconds(s, 128, 1);
            samples.push((d_group, s, est_t, mod_t));
            xs.push(est_t);
            ys.push(mod_t);
        }
    }
    (pearson(&xs, &ys), samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0], &[1.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "sample lengths differ")]
    fn pearson_length_mismatch() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn correlation_matches_paper_claim() {
        // Paper §5.1 reports r = 0.93; our estimator-vs-model pairing
        // should land in the same high-correlation regime.
        let (r, samples) = estimator_correlation();
        assert_eq!(samples.len(), 18);
        assert!(r > 0.9, "Pearson r = {r}");
        assert!(r <= 1.0);
    }

    #[test]
    fn estimator_tracks_model_within_2x() {
        // The idealized estimator is not calibrated, but it must stay in
        // the same ballpark as the model (§5.1 relies on trend agreement,
        // not absolute agreement).
        let est = PerformanceEstimator::smartssd();
        for d in [1u32, 4, 5] {
            let model = AccelTimingModel::smartssd(d);
            let e = est.kernel_seconds(16384, 128, d, 1);
            let m = model.kernel_seconds(16384, 128, 1);
            let ratio = e / m;
            assert!((0.5..2.0).contains(&ratio), "d={d}: ratio {ratio}");
        }
    }

    #[test]
    fn zero_work() {
        let est = PerformanceEstimator::smartssd();
        assert_eq!(est.kernel_seconds(0, 128, 1, 1), 0.0);
        assert_eq!(est.kernel_seconds(4096, 128, 1, 0), 0.0);
    }
}
