//! The functional model of the HILOS attention accelerator (§4.4).
//!
//! The hardware is a temporal (blocked) pipeline of four units processing
//! the context in 128-token blocks:
//!
//! 1. **query-key product unit** — blocked GEMV with an *online transpose*:
//!    a 128×128 tile of the row-major K matrix is loaded into K-Buf,
//!    transposed in place into Kᵀ-Buf and streamed to the MACs, so the Key
//!    matrix never needs a transposed copy in DRAM (Fig. 7d),
//! 2. **softmax statistics aggregation unit** — pass 1 of the two-pass
//!    softmax (Algorithm 1),
//! 3. **softmax normalization unit** — pass 2 (Fig. 7c),
//! 4. **score-value product unit** — blocked GEMV against V (Fig. 7e).
//!
//! GQA is supported natively: the `d_group` queries of a group are
//! processed against a single broadcast K/V stream. The **delayed
//! KV-cache writeback** path (§4.3) enters here as precomputed host-side
//! `QKᵀ` scalars plus buffered V rows ([`HostTail`]), which join the
//! softmax statistics and the score-value product without the new KV
//! entries ever being written to flash.
//!
//! Numerics follow §5.4: storage is FP16, every accumulation and
//! exponential is FP32, and padding tokens are masked to −10⁴.
//!
//! # The zero-allocation hot path (arena + LUT design)
//!
//! The functional kernel has to sweep million-token contexts fast enough
//! to drive serving-scale campaign simulations, so the compute path is
//! built around two ideas:
//!
//! * **Table-driven decode.** All FP16 → FP32 widening goes through the
//!   lazily-built 65536-entry LUT ([`crate::f16_decode_lut`]) via the
//!   batch row-decode helpers on [`MatrixF16`]
//!   ([`decode_rows_into`](MatrixF16::decode_rows_into)), replacing a
//!   branchy bit-twiddling conversion per multiply–accumulate with one
//!   indexed load per stored element.
//! * **A reusable flat scratch arena.** [`KernelScratch`] owns every
//!   intermediate buffer (decoded queries, the decoded 128-token K/V
//!   block, the score arena, softmax statistics, output accumulators) as
//!   flat `Vec<f32>`s that grow once and are reused across calls — the
//!   steady state allocates nothing but the `g × d` output matrix. The
//!   plain [`attention_kernel`] entry point keeps one arena per thread in
//!   a thread-local; [`attention_kernel_with_scratch`] gives callers
//!   explicit control.
//!
//! Each 128-token K/V block is decoded **once per GQA group** and shared
//! by all `g` queries (the baseline re-decoded V rows per query and Q
//! elements per MAC — a `g`-fold and `block_len`-fold reduction in decode
//! work respectively). Floating-point evaluation order is preserved
//! exactly — tile-chunked `QKᵀ` partial sums, token-ascending score-value
//! accumulation — so results are **bit-identical** to the original
//! kernel, which is retained as [`attention_kernel_baseline`] and pinned
//! by the golden suite in `tests/bitexact.rs`.
//!
//! For contexts where even the flat `g × s` score arena is unwelcome,
//! [`attention_kernel_fused`] folds the softmax statistics into the block
//! stream (sweep 1) and then re-streams the blocks, recomputing each
//! score tile instead of materializing `all_scores` (sweep 2): memory
//! drops to `O(block)` while results stay bit-identical, at the price of
//! computing the `QKᵀ` products twice.

use crate::softmax::{SoftmaxStats, MASK_VALUE};
use crate::tensor::{MatrixF16, MatrixF32};
use std::cell::RefCell;
use std::error::Error;
use std::fmt;

/// Tokens per hardware block (K/V tile height).
pub const BLOCK_TOKENS: usize = 128;

/// Tile width of the on-chip K buffer (online-transpose granularity).
pub const TILE_DIM: usize = 128;

/// Precomputed host-side contribution for buffered (not-yet-spilled) KV
/// entries — the delayed-writeback fast path.
#[derive(Debug, Clone, Copy)]
pub struct HostTail<'a> {
    /// `g × t` pre-scaled `QKᵀ` scores computed by the host CPU against the
    /// buffered keys.
    pub scores: &'a MatrixF32,
    /// `t × d` buffered value rows, sent from host memory.
    pub values: &'a MatrixF16,
}

/// Inputs of one accelerator invocation: a query group against one KV
/// shard.
#[derive(Debug, Clone, Copy)]
pub struct AttentionInputs<'a> {
    /// `g × d` queries sharing this KV cache (g = `d_group`).
    pub queries: &'a MatrixF16,
    /// `s × d` key rows (row-major, token-major — the SSD layout).
    pub keys: &'a MatrixF16,
    /// `s × d` value rows.
    pub values: &'a MatrixF16,
    /// Optional validity mask (`false` = padding) of length `s`.
    pub valid: Option<&'a [bool]>,
    /// Score scale, usually `1/sqrt(d)`.
    pub scale: f32,
    /// Delayed-writeback tail, if any.
    pub host_tail: Option<HostTail<'a>>,
}

/// Errors from the attention kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// Two inputs disagreed on a dimension.
    ShapeMismatch {
        /// Description of the offending input.
        what: &'static str,
        /// Expected extent.
        expected: usize,
        /// Actual extent.
        actual: usize,
    },
    /// Neither stored context nor host tail supplied any tokens.
    EmptyContext,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::ShapeMismatch { what, expected, actual } => {
                write!(f, "shape mismatch in {what}: expected {expected}, got {actual}")
            }
            KernelError::EmptyContext => write!(f, "attention over an empty context"),
        }
    }
}

impl Error for KernelError {}

/// Transposes a `rows × cols` tile held row-major in `src` into `dst`
/// (`cols × rows`) — the K-Buf → Kᵀ-Buf online transpose of Fig. 7d.
///
/// # Panics
///
/// Panics if the slices are smaller than `rows * cols`.
pub fn transpose_tile(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    assert!(src.len() >= rows * cols, "source tile too small");
    assert!(dst.len() >= rows * cols, "destination tile too small");
    for r in 0..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
}

fn validate(inputs: &AttentionInputs<'_>) -> Result<(usize, usize, usize, usize), KernelError> {
    let g = inputs.queries.rows();
    let d = inputs.queries.cols();
    let s = inputs.keys.rows();
    if inputs.keys.cols() != d {
        return Err(KernelError::ShapeMismatch {
            what: "keys.cols",
            expected: d,
            actual: inputs.keys.cols(),
        });
    }
    if inputs.values.rows() != s {
        return Err(KernelError::ShapeMismatch {
            what: "values.rows",
            expected: s,
            actual: inputs.values.rows(),
        });
    }
    if inputs.values.cols() != d {
        return Err(KernelError::ShapeMismatch {
            what: "values.cols",
            expected: d,
            actual: inputs.values.cols(),
        });
    }
    if let Some(v) = inputs.valid {
        if v.len() != s {
            return Err(KernelError::ShapeMismatch {
                what: "valid.len",
                expected: s,
                actual: v.len(),
            });
        }
    }
    let mut tail = 0;
    if let Some(t) = &inputs.host_tail {
        tail = t.values.rows();
        if t.scores.rows() != g {
            return Err(KernelError::ShapeMismatch {
                what: "host_tail.scores.rows",
                expected: g,
                actual: t.scores.rows(),
            });
        }
        if t.scores.cols() != tail {
            return Err(KernelError::ShapeMismatch {
                what: "host_tail.scores.cols",
                expected: tail,
                actual: t.scores.cols(),
            });
        }
        if t.values.cols() != d {
            return Err(KernelError::ShapeMismatch {
                what: "host_tail.values.cols",
                expected: d,
                actual: t.values.cols(),
            });
        }
    }
    if s + tail == 0 {
        return Err(KernelError::EmptyContext);
    }
    Ok((g, d, s, tail))
}

/// Reusable flat scratch arena for the optimized kernels.
///
/// Owns every intermediate buffer the attention compute path needs, as
/// flat `f32` vectors that grow to the high-water mark and are reused
/// across calls. With a long-lived `KernelScratch` (or through the
/// thread-local arena inside [`attention_kernel`]) the hot path performs
/// no heap allocation beyond the returned output matrix.
#[derive(Debug, Default)]
pub struct KernelScratch {
    /// Decoded queries, `g × d`.
    q: Vec<f32>,
    /// Decoded K or V rows of the current 128-token block, `block × d`.
    block: Vec<f32>,
    /// Score tile of the current block, `g × BLOCK_TOKENS` (fused path).
    tile: Vec<f32>,
    /// Flat score arena, `g × (s + tail)` (two-pass path).
    scores: Vec<f32>,
    /// Softmax statistics, one per query.
    stats: Vec<SoftmaxStats>,
    /// Output accumulators, `g × d`.
    acc: Vec<f32>,
}

impl KernelScratch {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        KernelScratch::default()
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<KernelScratch> = RefCell::new(KernelScratch::new());
}

fn ensure(buf: &mut Vec<f32>, n: usize) {
    if buf.len() < n {
        buf.resize(n, 0.0);
    }
}

/// Scores `g` decoded queries against one decoded K block, writing the
/// masked/scaled tile to `out[qi * out_stride + out_offset + j]`.
///
/// The `QKᵀ` partial sums are chunked [`TILE_DIM`]-wide along the head
/// dimension — the same floating-point evaluation order as the baseline's
/// K-Buf/KT-Buf pipeline, so scores are bit-identical to
/// [`attention_kernel_baseline`]. (The online transpose itself is a
/// memory-layout device; arithmetic values are unaffected by it.)
#[allow(clippy::too_many_arguments)]
fn score_block(
    q: &[f32],
    g: usize,
    d: usize,
    k_block: &[f32],
    block_len: usize,
    valid: Option<&[bool]>,
    block_start: usize,
    scale: f32,
    out: &mut [f32],
    out_stride: usize,
    out_offset: usize,
) {
    for qi in 0..g {
        let qrow = &q[qi * d..(qi + 1) * d];
        let orow = &mut out[qi * out_stride + out_offset..qi * out_stride + out_offset + block_len];
        for (j, sj) in orow.iter_mut().enumerate() {
            let krow = &k_block[j * d..(j + 1) * d];
            let mut score = 0.0f32;
            let mut dt = 0;
            while dt < d {
                let tile_w = TILE_DIM.min(d - dt);
                let mut acc = 0.0f32;
                for i in 0..tile_w {
                    acc += qrow[dt + i] * krow[dt + i];
                }
                score += acc;
                dt += tile_w;
            }
            let masked = valid.map(|v| !v[block_start + j]).unwrap_or(false);
            *sj = if masked { MASK_VALUE } else { score * scale };
        }
    }
}

/// The scoring routine a kernel driver runs per K block — same signature
/// as [`score_block`], so SIMD variants slot into the identical two-pass
/// driver without duplicating it.
type ScoreBlockFn =
    fn(&[f32], usize, usize, &[f32], usize, Option<&[bool]>, usize, f32, &mut [f32], usize, usize);

/// Eight-lane `QKᵀ` scoring: each dot product runs on [`SIMD_LANES`]
/// independent accumulators over exact chunks, a shape LLVM
/// auto-vectorizes to packed FMA on any target with 256-bit vectors
/// (`unsafe` intrinsics are forbidden in this crate). The summation
/// *order* differs from [`score_block`]'s tile-serial order, so scores —
/// and outputs — agree only to rounding; the `simd` tolerance test bounds
/// the divergence.
#[cfg(feature = "simd")]
#[allow(clippy::too_many_arguments)]
fn score_block_simd(
    q: &[f32],
    g: usize,
    d: usize,
    k_block: &[f32],
    block_len: usize,
    valid: Option<&[bool]>,
    block_start: usize,
    scale: f32,
    out: &mut [f32],
    out_stride: usize,
    out_offset: usize,
) {
    const SIMD_LANES: usize = 8;
    for qi in 0..g {
        let qrow = &q[qi * d..(qi + 1) * d];
        let orow = &mut out[qi * out_stride + out_offset..qi * out_stride + out_offset + block_len];
        for (j, sj) in orow.iter_mut().enumerate() {
            let krow = &k_block[j * d..(j + 1) * d];
            let mut acc = [0.0f32; SIMD_LANES];
            let mut qc = qrow.chunks_exact(SIMD_LANES);
            let mut kc = krow.chunks_exact(SIMD_LANES);
            for (qv, kv) in (&mut qc).zip(&mut kc) {
                for i in 0..SIMD_LANES {
                    acc[i] += qv[i] * kv[i];
                }
            }
            let mut score: f32 =
                qc.remainder().iter().zip(kc.remainder()).map(|(&a, &b)| a * b).sum();
            // Pairwise lane reduction (keeps the dependency tree shallow).
            score +=
                ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]));
            let masked = valid.map(|v| !v[block_start + j]).unwrap_or(false);
            *sj = if masked { MASK_VALUE } else { score * scale };
        }
    }
}

/// Accumulates the score-value product of one decoded V block into the
/// per-query output accumulators. `scores(qi)` yields the normalized
/// slice of this block's scores for query `qi`.
fn accumulate_block<'a>(
    stats: &[SoftmaxStats],
    scores: impl Fn(usize) -> &'a [f32],
    v_block: &[f32],
    g: usize,
    d: usize,
    acc: &mut [f32],
) {
    for qi in 0..g {
        let stat = stats[qi];
        let srow = scores(qi);
        let arow = &mut acc[qi * d..(qi + 1) * d];
        for (j, &x) in srow.iter().enumerate() {
            let w = stat.normalize(x);
            let vrow = &v_block[j * d..(j + 1) * d];
            for (a, &vv) in arow.iter_mut().zip(vrow) {
                *a += w * vv;
            }
        }
    }
}

fn emit_output(acc: &[f32], g: usize, d: usize) -> MatrixF32 {
    let mut out = MatrixF32::zeros(g, d);
    for qi in 0..g {
        for c in 0..d {
            out.set(qi, c, acc[qi * d + c]);
        }
    }
    out
}

/// Runs the blocked two-pass attention kernel with the given scratch
/// arena — the optimized hot path.
///
/// Each K/V block is LUT-decoded once and shared by all `g` queries of
/// the GQA group; scores live in a flat arena instead of per-block
/// vectors. Results are bit-identical to
/// [`attention_kernel_baseline`].
///
/// # Errors
///
/// Returns [`KernelError`] on shape mismatches or an empty context.
pub fn attention_kernel_with_scratch(
    inputs: &AttentionInputs<'_>,
    scratch: &mut KernelScratch,
) -> Result<MatrixF32, KernelError> {
    attention_two_pass_scored(inputs, scratch, score_block)
}

/// The two-pass driver, generic over the scoring routine. Every caller
/// shares this body, so the bit-exact path and the SIMD path differ in
/// *nothing* but the `QKᵀ` inner loop.
fn attention_two_pass_scored(
    inputs: &AttentionInputs<'_>,
    scratch: &mut KernelScratch,
    score: ScoreBlockFn,
) -> Result<MatrixF32, KernelError> {
    let (g, d, s, tail) = validate(inputs)?;
    let total = s + tail;

    ensure(&mut scratch.q, g * d);
    inputs.queries.decode_rows_into(0, g, &mut scratch.q);
    ensure(&mut scratch.block, BLOCK_TOKENS * d);
    ensure(&mut scratch.scores, g * total);
    scratch.stats.clear();
    scratch.stats.resize(g, SoftmaxStats::new());

    // ---- Pass 1: stream K blocks, building scores + softmax statistics.
    let mut block_start = 0;
    while block_start < s {
        let block_len = BLOCK_TOKENS.min(s - block_start);
        inputs.keys.decode_rows_into(block_start, block_len, &mut scratch.block);
        score(
            &scratch.q,
            g,
            d,
            &scratch.block,
            block_len,
            inputs.valid,
            block_start,
            inputs.scale,
            &mut scratch.scores,
            total,
            block_start,
        );
        for (qi, stat) in scratch.stats.iter_mut().enumerate() {
            stat.update_block(&scratch.scores[qi * total + block_start..][..block_len]);
        }
        block_start += block_len;
    }

    // Host-tail scores (delayed writeback) join the statistics stream.
    if let Some(t) = &inputs.host_tail {
        for (qi, stat) in scratch.stats.iter_mut().enumerate() {
            let row = t.scores.row(qi);
            for chunk in row.chunks(BLOCK_TOKENS) {
                stat.update_block(chunk);
            }
            scratch.scores[qi * total + s..qi * total + total].copy_from_slice(row);
        }
    }

    // ---- Pass 2: normalize and accumulate the score-value product.
    ensure(&mut scratch.acc, g * d);
    scratch.acc[..g * d].fill(0.0);
    let mut block_start = 0;
    while block_start < s {
        let block_len = BLOCK_TOKENS.min(s - block_start);
        inputs.values.decode_rows_into(block_start, block_len, &mut scratch.block);
        let scores = &scratch.scores;
        accumulate_block(
            &scratch.stats,
            |qi| &scores[qi * total + block_start..][..block_len],
            &scratch.block,
            g,
            d,
            &mut scratch.acc,
        );
        block_start += block_len;
    }
    if let Some(t) = &inputs.host_tail {
        let mut tail_start = 0;
        while tail_start < tail {
            let tail_len = BLOCK_TOKENS.min(tail - tail_start);
            t.values.decode_rows_into(tail_start, tail_len, &mut scratch.block);
            let scores = &scratch.scores;
            accumulate_block(
                &scratch.stats,
                |qi| &scores[qi * total + s + tail_start..][..tail_len],
                &scratch.block,
                g,
                d,
                &mut scratch.acc,
            );
            tail_start += tail_len;
        }
    }
    Ok(emit_output(&scratch.acc, g, d))
}

/// Runs the full blocked two-pass attention kernel.
///
/// Returns the `g × d` attention outputs in FP32 (the device sends them
/// to the host as FP16; use [`MatrixF32::to_f16`] at that boundary).
/// Uses a per-thread [`KernelScratch`], so repeated calls allocate
/// nothing but the output; results are bit-identical to
/// [`attention_kernel_baseline`].
///
/// # Errors
///
/// Returns [`KernelError`] on shape mismatches or an empty context.
pub fn attention_kernel(inputs: &AttentionInputs<'_>) -> Result<MatrixF32, KernelError> {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => attention_kernel_with_scratch(inputs, &mut scratch),
        // Re-entrant call (kernel invoked from inside a kernel): fall
        // back to a fresh arena rather than panicking.
        Err(_) => attention_kernel_with_scratch(inputs, &mut KernelScratch::new()),
    })
}

/// [`attention_kernel`] with the eight-lane SIMD `QKᵀ` inner loop
/// ([`score_block_simd`]). Same driver, same inputs, same shapes — only
/// the dot-product summation order differs, so outputs agree with
/// [`attention_kernel`] to rounding (bounded by the `simd` tolerance
/// test) rather than bit-exactly.
///
/// # Errors
///
/// Returns [`KernelError`] on shape mismatches or an empty context.
#[cfg(feature = "simd")]
pub fn attention_kernel_simd(inputs: &AttentionInputs<'_>) -> Result<MatrixF32, KernelError> {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => attention_kernel_simd_with_scratch(inputs, &mut scratch),
        Err(_) => attention_kernel_simd_with_scratch(inputs, &mut KernelScratch::new()),
    })
}

/// [`attention_kernel_simd`] with an explicit scratch arena.
///
/// # Errors
///
/// Returns [`KernelError`] on shape mismatches or an empty context.
#[cfg(feature = "simd")]
pub fn attention_kernel_simd_with_scratch(
    inputs: &AttentionInputs<'_>,
    scratch: &mut KernelScratch,
) -> Result<MatrixF32, KernelError> {
    attention_two_pass_scored(inputs, scratch, score_block_simd)
}

/// Runs the fused streaming variant: softmax statistics are folded into
/// the block stream, and the score-value pass re-streams the K blocks,
/// recomputing each score tile instead of materializing `all_scores`.
///
/// Peak intermediate memory is `O(BLOCK_TOKENS · (g + d))` regardless of
/// context length — the variant of choice for 100K-token-class sweeps —
/// while results stay bit-identical to [`attention_kernel_baseline`]
/// (score recomputation replays the exact same FP32 operations). The
/// trade-off is computing the `QKᵀ` products twice.
///
/// # Errors
///
/// Returns [`KernelError`] on shape mismatches or an empty context.
pub fn attention_kernel_fused(inputs: &AttentionInputs<'_>) -> Result<MatrixF32, KernelError> {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => attention_kernel_fused_with_scratch(inputs, &mut scratch),
        Err(_) => attention_kernel_fused_with_scratch(inputs, &mut KernelScratch::new()),
    })
}

/// [`attention_kernel_fused`] with an explicit scratch arena.
///
/// # Errors
///
/// Returns [`KernelError`] on shape mismatches or an empty context.
pub fn attention_kernel_fused_with_scratch(
    inputs: &AttentionInputs<'_>,
    scratch: &mut KernelScratch,
) -> Result<MatrixF32, KernelError> {
    let (g, d, s, tail) = validate(inputs)?;

    ensure(&mut scratch.q, g * d);
    inputs.queries.decode_rows_into(0, g, &mut scratch.q);
    ensure(&mut scratch.block, BLOCK_TOKENS * d);
    ensure(&mut scratch.tile, g * BLOCK_TOKENS);
    scratch.stats.clear();
    scratch.stats.resize(g, SoftmaxStats::new());

    // ---- Sweep 1: statistics only; score tiles are discarded.
    let mut block_start = 0;
    while block_start < s {
        let block_len = BLOCK_TOKENS.min(s - block_start);
        inputs.keys.decode_rows_into(block_start, block_len, &mut scratch.block);
        score_block(
            &scratch.q,
            g,
            d,
            &scratch.block,
            block_len,
            inputs.valid,
            block_start,
            inputs.scale,
            &mut scratch.tile,
            block_len,
            0,
        );
        for (qi, stat) in scratch.stats.iter_mut().enumerate() {
            stat.update_block(&scratch.tile[qi * block_len..][..block_len]);
        }
        block_start += block_len;
    }
    if let Some(t) = &inputs.host_tail {
        for (qi, stat) in scratch.stats.iter_mut().enumerate() {
            for chunk in t.scores.row(qi).chunks(BLOCK_TOKENS) {
                stat.update_block(chunk);
            }
        }
    }

    // ---- Sweep 2: recompute each score tile, normalize, accumulate.
    ensure(&mut scratch.acc, g * d);
    scratch.acc[..g * d].fill(0.0);
    let mut block_start = 0;
    while block_start < s {
        let block_len = BLOCK_TOKENS.min(s - block_start);
        inputs.keys.decode_rows_into(block_start, block_len, &mut scratch.block);
        score_block(
            &scratch.q,
            g,
            d,
            &scratch.block,
            block_len,
            inputs.valid,
            block_start,
            inputs.scale,
            &mut scratch.tile,
            block_len,
            0,
        );
        inputs.values.decode_rows_into(block_start, block_len, &mut scratch.block);
        let tile = &scratch.tile;
        accumulate_block(
            &scratch.stats,
            |qi| &tile[qi * block_len..][..block_len],
            &scratch.block,
            g,
            d,
            &mut scratch.acc,
        );
        block_start += block_len;
    }
    if let Some(t) = &inputs.host_tail {
        let mut tail_start = 0;
        while tail_start < tail {
            let tail_len = BLOCK_TOKENS.min(tail - tail_start);
            t.values.decode_rows_into(tail_start, tail_len, &mut scratch.block);
            accumulate_block(
                &scratch.stats,
                |qi| &t.scores.row(qi)[tail_start..tail_start + tail_len],
                &scratch.block,
                g,
                d,
                &mut scratch.acc,
            );
            tail_start += tail_len;
        }
    }
    Ok(emit_output(&scratch.acc, g, d))
}

/// Query-key product unit: scores of `g` queries against one K block,
/// using the online tile transpose. Returns a `g × block_len` score tile
/// (scaled, masked).
fn query_key_unit(
    queries: &MatrixF16,
    keys: &MatrixF16,
    block_start: usize,
    block_len: usize,
    valid: Option<&[bool]>,
    scale: f32,
) -> Vec<Vec<f32>> {
    let g = queries.rows();
    let d = queries.cols();
    let mut scores = vec![vec![0.0f32; block_len]; g];

    // K-Buf / KT-Buf emulation: walk the head dimension in 128-wide tiles.
    let mut k_buf = vec![0.0f32; BLOCK_TOKENS * TILE_DIM];
    let mut kt_buf = vec![0.0f32; BLOCK_TOKENS * TILE_DIM];
    let mut d_tile = 0;
    while d_tile < d {
        let tile_w = TILE_DIM.min(d - d_tile);
        // Load the 128 × tile_w K tile row-major (the SSD/DRAM layout).
        for r in 0..block_len {
            let krow = keys.row(block_start + r);
            for c in 0..tile_w {
                k_buf[r * tile_w + c] = krow[d_tile + c].to_f32();
            }
        }
        // Online transpose into KT-Buf.
        transpose_tile(&k_buf[..block_len * tile_w], block_len, tile_w, &mut kt_buf);
        // Blocked GEMV: each query's tile-partial dot products, FP32 MACs.
        for (qi, srow) in scores.iter_mut().enumerate() {
            let q = queries.row(qi);
            for (j, sj) in srow.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for i in 0..tile_w {
                    // KT-Buf is tile_w × block_len after the transpose.
                    acc += q[d_tile + i].to_f32() * kt_buf[i * block_len + j];
                }
                *sj += acc;
            }
        }
        d_tile += tile_w;
    }

    // Scale and mask (the MASK stage of Fig. 7b).
    for srow in scores.iter_mut() {
        for (j, sj) in srow.iter_mut().enumerate() {
            let masked = valid.map(|v| !v[block_start + j]).unwrap_or(false);
            *sj = if masked { MASK_VALUE } else { *sj * scale };
        }
    }
    scores
}

/// The original (pre-optimization) two-pass kernel, kept as the golden
/// baseline: per-element `F16::to_f32` bit-twiddling, per-block
/// `Vec<Vec<f32>>` score tiles, and per-query V decode.
///
/// [`attention_kernel`] / [`attention_kernel_fused`] are bit-identical to
/// this function (asserted exhaustively by `tests/bitexact.rs`); the
/// criterion benches and the `bench_kernels` smoke binary measure their
/// speedup against it.
///
/// # Errors
///
/// Returns [`KernelError`] on shape mismatches or an empty context.
pub fn attention_kernel_baseline(inputs: &AttentionInputs<'_>) -> Result<MatrixF32, KernelError> {
    let (g, d, s, tail) = validate(inputs)?;

    // ---- Pass 1: stream blocks, building scores + softmax statistics ----
    // (In hardware the score tiles spill to the on-board DRAM; functionally
    // we keep them in a Vec.)
    let mut all_scores: Vec<Vec<f32>> = vec![Vec::with_capacity(s + tail); g];
    let mut stats: Vec<SoftmaxStats> = vec![SoftmaxStats::new(); g];

    let mut block_start = 0;
    while block_start < s {
        let block_len = BLOCK_TOKENS.min(s - block_start);
        let tile = query_key_unit(
            inputs.queries,
            inputs.keys,
            block_start,
            block_len,
            inputs.valid,
            inputs.scale,
        );
        for qi in 0..g {
            stats[qi].update_block(&tile[qi]);
            all_scores[qi].extend_from_slice(&tile[qi]);
        }
        block_start += block_len;
    }

    // Host-tail scores (delayed writeback): pre-scaled scalars from the
    // CPU join the statistics stream as extra blocks.
    if let Some(t) = &inputs.host_tail {
        for qi in 0..g {
            let row = t.scores.row(qi);
            for chunk in row.chunks(BLOCK_TOKENS) {
                stats[qi].update_block(chunk);
            }
            all_scores[qi].extend_from_slice(row);
        }
    }

    // ---- Pass 2: normalize and accumulate the score-value product ----
    let mut out = MatrixF32::zeros(g, d);
    for qi in 0..g {
        let stat = stats[qi];
        let scores = &all_scores[qi];
        let mut acc = vec![0.0f32; d];
        // Stored context blocks.
        for (j, &x) in scores[..s].iter().enumerate() {
            let w = stat.normalize(x);
            let v = inputs.values.row(j);
            for (a, &vv) in acc.iter_mut().zip(v) {
                *a += w * vv.to_f32();
            }
        }
        // Buffered tail from host memory.
        if let Some(t) = &inputs.host_tail {
            for (j, &x) in scores[s..].iter().enumerate() {
                let w = stat.normalize(x);
                let v = t.values.row(j);
                for (a, &vv) in acc.iter_mut().zip(v) {
                    *a += w * vv.to_f32();
                }
            }
        }
        for (c, &a) in acc.iter().enumerate() {
            out.set(qi, c, a);
        }
    }
    Ok(out)
}

/// Computes the host-side partial `QKᵀ` scores for buffered keys — the CPU
/// half of the delayed-writeback protocol (step 2 of Fig. 6b). Scores are
/// pre-scaled so the accelerator can use them directly.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn host_partial_scores(
    queries: &MatrixF16,
    buffered_keys: &MatrixF16,
    scale: f32,
) -> MatrixF32 {
    let g = queries.rows();
    let d = queries.cols();
    let t = buffered_keys.rows();
    assert_eq!(buffered_keys.cols(), d, "buffered key dim mismatch");
    let lut = crate::f16::f16_decode_lut();
    MatrixF32::from_fn(g, t, |qi, j| {
        let q = queries.row(qi);
        let k = buffered_keys.row(j);
        let dot: f32 = q
            .iter()
            .zip(k)
            .map(|(&a, &b)| lut[a.to_bits() as usize] * lut[b.to_bits() as usize])
            .sum();
        dot * scale
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::attention_reference;

    fn toy(g: usize, s: usize, d: usize, seed: u64) -> (MatrixF32, MatrixF32, MatrixF32) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0
        };
        let q = MatrixF32::from_fn(g, d, |_, _| next());
        let k = MatrixF32::from_fn(s, d, |_, _| next());
        let v = MatrixF32::from_fn(s, d, |_, _| next());
        (q, k, v)
    }

    /// Runs the kernel on f16-rounded inputs and the reference on the same
    /// (rounded) values, asserting closeness.
    fn check_against_reference(g: usize, s: usize, d: usize, seed: u64, tol: f32) {
        let (q, k, v) = toy(g, s, d, seed);
        let (qh, kh, vh) = (q.to_f16(), k.to_f16(), v.to_f16());
        let scale = 1.0 / (d as f32).sqrt();
        let out = attention_kernel(&AttentionInputs {
            queries: &qh,
            keys: &kh,
            values: &vh,
            valid: None,
            scale,
            host_tail: None,
        })
        .unwrap();
        let reference = attention_reference(&qh.to_f32(), &kh.to_f32(), &vh.to_f32(), None, scale);
        let diff = out.max_abs_diff(&reference);
        assert!(diff < tol, "g={g} s={s} d={d}: diff {diff}");
    }

    #[test]
    fn matches_reference_small() {
        check_against_reference(1, 5, 8, 3, 1e-5);
    }

    #[test]
    fn matches_reference_multi_block() {
        // Crosses several 128-token block boundaries.
        check_against_reference(1, 300, 64, 7, 1e-4);
    }

    #[test]
    fn matches_reference_gqa_group() {
        check_against_reference(5, 257, 32, 11, 1e-4);
    }

    #[test]
    fn matches_reference_non_pow2_head_dim() {
        // OPT-30B head_dim = 112: exercises partial d tiles.
        check_against_reference(1, 140, 112, 13, 1e-4);
    }

    #[test]
    fn exact_block_boundary() {
        check_against_reference(2, 256, 16, 17, 1e-4);
    }

    fn bits(m: &MatrixF32) -> Vec<u32> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn optimized_and_fused_match_baseline_bitwise() {
        let (q, k, v) = toy(3, 300, 48, 41);
        let (qh, kh, vh) = (q.to_f16(), k.to_f16(), v.to_f16());
        let inputs = AttentionInputs {
            queries: &qh,
            keys: &kh,
            values: &vh,
            valid: None,
            scale: 1.0 / 48f32.sqrt(),
            host_tail: None,
        };
        let base = attention_kernel_baseline(&inputs).unwrap();
        let fast = attention_kernel(&inputs).unwrap();
        let fused = attention_kernel_fused(&inputs).unwrap();
        assert_eq!(bits(&base), bits(&fast), "optimized kernel diverged");
        assert_eq!(bits(&base), bits(&fused), "fused kernel diverged");
    }

    #[test]
    fn scratch_reuse_across_shapes_is_clean() {
        // A large call followed by a smaller one must not see stale arena
        // contents.
        let mut scratch = KernelScratch::new();
        let (q1, k1, v1) = toy(4, 300, 64, 43);
        let (qh1, kh1, vh1) = (q1.to_f16(), k1.to_f16(), v1.to_f16());
        let big = AttentionInputs {
            queries: &qh1,
            keys: &kh1,
            values: &vh1,
            valid: None,
            scale: 0.125,
            host_tail: None,
        };
        attention_kernel_with_scratch(&big, &mut scratch).unwrap();

        let (q2, k2, v2) = toy(2, 30, 16, 47);
        let (qh2, kh2, vh2) = (q2.to_f16(), k2.to_f16(), v2.to_f16());
        let small = AttentionInputs {
            queries: &qh2,
            keys: &kh2,
            values: &vh2,
            valid: None,
            scale: 0.25,
            host_tail: None,
        };
        let reused = attention_kernel_with_scratch(&small, &mut scratch).unwrap();
        let fresh = attention_kernel_baseline(&small).unwrap();
        assert_eq!(bits(&reused), bits(&fresh));

        let reused_fused = attention_kernel_fused_with_scratch(&small, &mut scratch).unwrap();
        assert_eq!(bits(&reused_fused), bits(&fresh));
    }

    #[test]
    fn transpose_tile_round_trip() {
        let rows = 3;
        let cols = 5;
        let src: Vec<f32> = (0..15).map(|i| i as f32).collect();
        let mut t = vec![0.0; 15];
        let mut back = vec![0.0; 15];
        transpose_tile(&src, rows, cols, &mut t);
        assert_eq!(t[0], 0.0);
        assert_eq!(t[1], 5.0); // (0,1) of transposed = (1,0) of src
        transpose_tile(&t, cols, rows, &mut back);
        assert_eq!(src, back);
    }

    #[test]
    fn mask_matches_truncated_context() {
        let (q, k, v) = toy(2, 200, 16, 23);
        let (qh, kh, vh) = (q.to_f16(), k.to_f16(), v.to_f16());
        let scale = 0.25;
        let mut valid = vec![true; 200];
        for item in valid.iter_mut().skip(130) {
            *item = false;
        }
        let masked = attention_kernel(&AttentionInputs {
            queries: &qh,
            keys: &kh,
            values: &vh,
            valid: Some(&valid),
            scale,
            host_tail: None,
        })
        .unwrap();
        let kh_t = {
            let kf = kh.to_f32();
            MatrixF32::from_fn(130, 16, |r, c| kf.at(r, c)).to_f16()
        };
        let vh_t = {
            let vf = vh.to_f32();
            MatrixF32::from_fn(130, 16, |r, c| vf.at(r, c)).to_f16()
        };
        let truncated = attention_kernel(&AttentionInputs {
            queries: &qh,
            keys: &kh_t,
            values: &vh_t,
            valid: None,
            scale,
            host_tail: None,
        })
        .unwrap();
        assert!(masked.max_abs_diff(&truncated) < 1e-4);
    }

    #[test]
    fn host_tail_equals_full_context() {
        // Splitting the context into [stored | buffered-tail] must give the
        // same answer as attending over everything from storage — the §4.3
        // correctness requirement.
        let (q, k, v) = toy(3, 200, 32, 29);
        let (qh, kh, vh) = (q.to_f16(), k.to_f16(), v.to_f16());
        let scale = 1.0 / (32f32).sqrt();

        let full = attention_kernel(&AttentionInputs {
            queries: &qh,
            keys: &kh,
            values: &vh,
            valid: None,
            scale,
            host_tail: None,
        })
        .unwrap();

        // Stored prefix = 185 tokens, buffered tail = 15 tokens.
        let split = 185;
        let kf = kh.to_f32();
        let vf = vh.to_f32();
        let k_stored = MatrixF32::from_fn(split, 32, |r, c| kf.at(r, c)).to_f16();
        let v_stored = MatrixF32::from_fn(split, 32, |r, c| vf.at(r, c)).to_f16();
        let k_tail = MatrixF32::from_fn(200 - split, 32, |r, c| kf.at(split + r, c)).to_f16();
        let v_tail = MatrixF32::from_fn(200 - split, 32, |r, c| vf.at(split + r, c)).to_f16();

        let tail_scores = host_partial_scores(&qh, &k_tail, scale);
        let with_tail = attention_kernel(&AttentionInputs {
            queries: &qh,
            keys: &k_stored,
            values: &v_stored,
            valid: None,
            scale,
            host_tail: Some(HostTail { scores: &tail_scores, values: &v_tail }),
        })
        .unwrap();

        let diff = full.max_abs_diff(&with_tail);
        assert!(diff < 1e-4, "delayed writeback changed the result: {diff}");
    }

    #[test]
    fn tail_only_context_works() {
        // Right after prefill-less decode every KV entry may be buffered.
        let (q, k, v) = toy(1, 10, 8, 31);
        let (qh, kh, vh) = (q.to_f16(), k.to_f16(), v.to_f16());
        let scale = 0.35;
        let empty_k = MatrixF16::zeros(0, 8);
        let empty_v = MatrixF16::zeros(0, 8);
        let tail_scores = host_partial_scores(&qh, &kh, scale);
        let out = attention_kernel(&AttentionInputs {
            queries: &qh,
            keys: &empty_k,
            values: &empty_v,
            valid: None,
            scale,
            host_tail: Some(HostTail { scores: &tail_scores, values: &vh }),
        })
        .unwrap();
        let reference = attention_reference(&qh.to_f32(), &kh.to_f32(), &vh.to_f32(), None, scale);
        assert!(out.max_abs_diff(&reference) < 1e-5);
    }

    #[test]
    fn shape_errors_are_reported() {
        let q = MatrixF16::zeros(1, 8);
        let k = MatrixF16::zeros(4, 8);
        let v_bad = MatrixF16::zeros(3, 8);
        let err = attention_kernel(&AttentionInputs {
            queries: &q,
            keys: &k,
            values: &v_bad,
            valid: None,
            scale: 1.0,
            host_tail: None,
        })
        .unwrap_err();
        assert!(matches!(err, KernelError::ShapeMismatch { what: "values.rows", .. }));

        let empty_k = MatrixF16::zeros(0, 8);
        let empty_v = MatrixF16::zeros(0, 8);
        let err = attention_kernel(&AttentionInputs {
            queries: &q,
            keys: &empty_k,
            values: &empty_v,
            valid: None,
            scale: 1.0,
            host_tail: None,
        })
        .unwrap_err();
        assert_eq!(err, KernelError::EmptyContext);
    }

    #[test]
    fn bad_mask_length_rejected() {
        let q = MatrixF16::zeros(1, 4);
        let k = MatrixF16::zeros(4, 4);
        let v = MatrixF16::zeros(4, 4);
        let valid = vec![true; 3];
        let err = attention_kernel(&AttentionInputs {
            queries: &q,
            keys: &k,
            values: &v,
            valid: Some(&valid),
            scale: 1.0,
            host_tail: None,
        })
        .unwrap_err();
        assert!(matches!(err, KernelError::ShapeMismatch { what: "valid.len", .. }));
    }
}
