//! Software IEEE 754 binary16 ("half precision").
//!
//! The SmartSSD accelerator stores KV-cache data as FP16 and accumulates in
//! FP32 (paper §5.4). This module implements binary16 from scratch —
//! conversion to/from `f32` with round-to-nearest-even, including
//! subnormals, infinities and NaN — so the functional kernel is
//! bit-faithful to the hardware's storage format without external crates.

use std::fmt;

/// An IEEE 754 binary16 value.
///
/// # Equality semantics
///
/// `PartialEq` is **derived over the raw bit pattern**, not IEEE
/// semantics: `F16::NAN == F16::NAN` is `true` (same bits) while two NaNs
/// with different payloads or signs compare unequal, and `+0.0 != -0.0`
/// (different bits). This is deliberate — the type models the *storage*
/// format of the KV cache, where bit-level identity is the property the
/// golden tests assert. Convert [`to_f32`](F16::to_f32) first when IEEE
/// comparison semantics are needed.
///
/// # Examples
///
/// ```
/// use hilos_accel::F16;
///
/// let x = F16::from_f32(1.5);
/// assert_eq!(x.to_f32(), 1.5);
/// // Rounding: 1 + 2^-11 is not representable and rounds to even (1.0).
/// assert_eq!(F16::from_f32(1.0 + f32::powi(2.0, -11)).to_f32(), 1.0);
/// // Bitwise equality: NaN equals itself, unlike IEEE floats.
/// assert_eq!(F16::NAN, F16::NAN);
/// assert_ne!(F16::from_f32(0.0), F16::from_f32(-0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// One.
    pub const ONE: F16 = F16(0x3c00);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7bff);
    /// Smallest positive subnormal (2⁻²⁴).
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7c00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xfc00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7e00);

    /// Reinterprets raw bits as an `F16`.
    pub const fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// The raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even.
    ///
    /// Values above the binary16 range become infinities; values below the
    /// smallest subnormal round to (signed) zero; NaN stays NaN.
    pub fn from_f32(value: f32) -> F16 {
        let x = value.to_bits();
        let sign = ((x >> 16) & 0x8000) as u16;
        let exp = (x >> 23) & 0xff;
        let man = x & 0x007f_ffff;

        if exp == 0xff {
            // Infinity or NaN.
            return if man == 0 { F16(sign | 0x7c00) } else { F16(sign | 0x7e00) };
        }

        let unbiased = exp as i32 - 127;
        if unbiased > 15 {
            return F16(sign | 0x7c00);
        }
        if unbiased >= -14 {
            // Normal binary16 range (result may still carry into infinity).
            let exp_h = (unbiased + 15) as u32;
            let mut half = (exp_h << 10) | (man >> 13);
            let round = man & 0x1fff;
            if round > 0x1000 || (round == 0x1000 && (half & 1) == 1) {
                half += 1;
            }
            return F16(sign | half as u16);
        }
        if unbiased < -25 {
            // Rounds to zero even for the tie case.
            return F16(sign);
        }
        // Subnormal range: shift the (implicit-1) mantissa into place.
        let man = man | 0x0080_0000;
        let shift = ((-14 - unbiased) + 13) as u32;
        let mut half = man >> shift;
        let rem = man & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        if rem > halfway || (rem == halfway && (half & 1) == 1) {
            half += 1;
        }
        F16(sign | half as u16)
    }

    /// Converts to `f32` exactly (every binary16 value is representable).
    ///
    /// NaNs widen bit-faithfully: the sign bit and the (left-shifted)
    /// mantissa payload are preserved, so `-NaN` stays negative and
    /// distinct payloads stay distinct. This is what makes the widening a
    /// pure function of the bit pattern — the property the
    /// [`decode lut`](crate::f16_decode_lut) and the exhaustive
    /// 65536-pattern regression test rely on.
    pub fn to_f32(self) -> f32 {
        let bits = self.0 as u32;
        let sign = (bits >> 15) & 1;
        let exp = (bits >> 10) & 0x1f;
        let man = bits & 0x3ff;
        let sign_f = if sign == 1 { -1.0f32 } else { 1.0 };
        match exp {
            0 => sign_f * (man as f32) * f32::powi(2.0, -24),
            // Infinity (man == 0) or NaN: exponent widens to all-ones;
            // sign and payload carry over unchanged.
            31 => f32::from_bits((sign << 31) | 0x7f80_0000 | (man << 13)),
            _ => f32::from_bits((sign << 31) | ((exp + 112) << 23) | (man << 13)),
        }
    }

    /// True if the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7c00) == 0x7c00 && (self.0 & 0x3ff) != 0
    }

    /// True if the value is ±∞.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7fff) == 0x7c00
    }

    /// True if the value is neither infinite nor NaN.
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7c00) != 0x7c00
    }

    /// True if the sign bit is set (including -0.0 and NaNs with sign).
    pub fn is_sign_negative(self) -> bool {
        (self.0 & 0x8000) != 0
    }
}

impl From<F16> for f32 {
    fn from(h: F16) -> f32 {
        h.to_f32()
    }
}

/// The lazily-built decode table: `table[bits] == F16::from_bits(bits).to_f32()`
/// for every one of the 65536 bit patterns (bit-exact, NaN payloads
/// included).
///
/// The computed [`F16::to_f32`] path branches on the exponent class per
/// element; at one branch per MAC that dominates the attention kernel's
/// hot loops. A single 256 KiB table turns every decode into one indexed
/// load. Built once per process on first use.
static DECODE_LUT: std::sync::OnceLock<Box<[f32; 1 << 16]>> = std::sync::OnceLock::new();

/// Returns the shared 65536-entry binary16 → `f32` decode table.
///
/// Hot loops should call this once and index the returned slice directly
/// (`lut[h.to_bits() as usize]`) rather than going through
/// [`F16::to_f32_lut`] per element, to keep the `OnceLock` check out of
/// the inner loop.
pub fn f16_decode_lut() -> &'static [f32; 1 << 16] {
    DECODE_LUT.get_or_init(|| {
        let mut table = vec![0.0f32; 1 << 16].into_boxed_slice();
        for (bits, slot) in table.iter_mut().enumerate() {
            *slot = F16::from_bits(bits as u16).to_f32();
        }
        match table.try_into() {
            Ok(array) => array,
            Err(_) => unreachable!("table has exactly 2^16 entries"),
        }
    })
}

impl F16 {
    /// Table-driven widening — bit-identical to [`F16::to_f32`].
    #[inline]
    pub fn to_f32_lut(self) -> f32 {
        f16_decode_lut()[self.0 as usize]
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_constants() {
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f32(), f32::powi(2.0, -24));
        assert_eq!(F16::INFINITY.to_f32(), f32::INFINITY);
        assert_eq!(F16::NEG_INFINITY.to_f32(), f32::NEG_INFINITY);
        assert!(F16::NAN.to_f32().is_nan());
    }

    #[test]
    fn from_f32_exact_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 1024.0, -0.25, 65504.0] {
            assert_eq!(F16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(F16::from_f32(65520.0), F16::INFINITY);
        assert_eq!(F16::from_f32(1e10), F16::INFINITY);
        assert_eq!(F16::from_f32(-1e10), F16::NEG_INFINITY);
        // 65504 + just under half a ulp stays finite.
        assert_eq!(F16::from_f32(65519.0), F16::MAX);
    }

    #[test]
    fn underflow_and_subnormals() {
        let min_sub = f32::powi(2.0, -24);
        assert_eq!(F16::from_f32(min_sub).to_bits(), 0x0001);
        // Half the min subnormal ties to even -> zero.
        assert_eq!(F16::from_f32(min_sub / 2.0).to_bits(), 0x0000);
        // Slightly more than half rounds up to the min subnormal.
        assert_eq!(F16::from_f32(min_sub * 0.51).to_bits(), 0x0001);
        // Largest subnormal.
        let largest_sub = 1023.0 * f32::powi(2.0, -24);
        assert_eq!(F16::from_f32(largest_sub).to_bits(), 0x03ff);
        // Smallest normal.
        assert_eq!(F16::from_f32(f32::powi(2.0, -14)).to_bits(), 0x0400);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: ties to even.
        assert_eq!(F16::from_f32(1.0 + f32::powi(2.0, -11)).to_bits(), F16::ONE.to_bits());
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even (up).
        let up = F16::from_f32(1.0 + 3.0 * f32::powi(2.0, -11));
        assert_eq!(up.to_bits(), 0x3c02);
        // Just above halfway rounds up.
        assert_eq!(F16::from_f32(1.0 + 1.01 * f32::powi(2.0, -11)).to_bits(), 0x3c01);
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::NAN.is_nan());
        assert!(!F16::INFINITY.is_nan());
        assert!(F16::INFINITY.is_infinite());
        assert!(!F16::ONE.is_infinite());
        assert!(F16::ONE.is_finite());
        assert!(!F16::NAN.is_finite());
    }

    #[test]
    fn nan_widening_preserves_sign_and_payload() {
        // A negative NaN stays negative through the widening.
        let neg_nan = F16::from_bits(0xfe00);
        assert!(neg_nan.is_nan());
        let widened = neg_nan.to_f32();
        assert!(widened.is_nan());
        assert!(widened.is_sign_negative(), "sign bit lost: {:#010x}", widened.to_bits());
        // A positive NaN stays positive.
        assert!(!F16::NAN.to_f32().is_sign_negative());
        // Distinct payloads widen to distinct f32 payloads.
        let a = F16::from_bits(0x7e01).to_f32().to_bits();
        let b = F16::from_bits(0x7e02).to_f32().to_bits();
        assert_ne!(a, b);
        // Payload sits in the top of the f32 mantissa (shifted by 13).
        assert_eq!(F16::from_bits(0x7e00).to_f32().to_bits(), 0x7fc0_0000);
    }

    #[test]
    fn bitwise_partial_eq_semantics() {
        // Documented contract: equality is bit-pattern equality.
        assert_eq!(F16::NAN, F16::NAN);
        assert_ne!(F16::NAN, F16::from_bits(0xfe00));
        assert_ne!(F16::from_bits(0x0000), F16::from_bits(0x8000)); // +0 vs -0
    }

    #[test]
    fn lut_decode_is_bit_identical_sampled() {
        // (The exhaustive 65536-pattern sweep lives in tests/bitexact.rs;
        // this keeps a quick unit-level check.)
        for bits in [0x0000u16, 0x8000, 0x3c00, 0x7bff, 0x7c00, 0xfc00, 0x7e00, 0xfe01, 0x0001] {
            let h = F16::from_bits(bits);
            assert_eq!(h.to_f32_lut().to_bits(), h.to_f32().to_bits(), "bits {bits:#06x}");
        }
    }

    #[test]
    fn signs() {
        assert!(F16::from_f32(-0.0).is_sign_negative());
        assert!(!F16::from_f32(0.0).is_sign_negative());
        assert_eq!(F16::from_f32(-2.5).to_f32(), -2.5);
    }

    #[test]
    fn exhaustive_round_trip_f16_to_f32_to_f16() {
        // Every non-NaN bit pattern must survive the round trip exactly.
        for bits in 0u16..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(F16::from_f32(h.to_f32()).is_nan());
            } else {
                let back = F16::from_f32(h.to_f32());
                assert_eq!(back.to_bits(), bits, "bits {bits:#06x}");
            }
        }
    }

    #[test]
    fn conversion_is_monotonic() {
        // Sampled increasing f32 values map to non-decreasing f16 values.
        let mut prev = f32::NEG_INFINITY;
        let mut prev_h = F16::NEG_INFINITY.to_f32();
        for i in -2000..2000 {
            let v = i as f32 * 37.777;
            if v <= prev {
                continue;
            }
            let h = F16::from_f32(v).to_f32();
            assert!(h >= prev_h, "monotonicity broke at {v}: {h} < {prev_h}");
            prev = v;
            prev_h = h;
        }
    }

    #[test]
    fn rounding_error_is_bounded() {
        // Relative error of a normal-range conversion is at most 2^-11.
        for i in 1..1000 {
            let v = i as f32 * 1.2345;
            let h = F16::from_f32(v).to_f32();
            let rel = ((h - v) / v).abs();
            assert!(rel <= f32::powi(2.0, -11), "value {v} err {rel}");
        }
    }
}
