//! Sliding-window attention support (§5.1's "specialized attention
//! variants").
//!
//! Models with windowed attention (Mistral-style) only attend to the last
//! `window` tokens. On the accelerator this is a masking schedule plus a
//! traffic saving: blocks entirely outside the window are never fetched
//! from flash. This module builds the window masks, computes the traffic
//! factor, and runs the windowed kernel by restricting the block range.

use crate::kernel::{attention_kernel, AttentionInputs, KernelError, BLOCK_TOKENS};
use crate::tensor::{MatrixF16, MatrixF32};

/// Builds the validity mask for a query at position `query_pos` (0-based,
/// attending over `s` stored tokens) with a sliding window of `window`
/// tokens: only positions in `(query_pos - window, query_pos]` are valid.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn sliding_window_mask(s: usize, query_pos: usize, window: usize) -> Vec<bool> {
    assert!(window > 0, "window must be positive");
    let lo = (query_pos + 1).saturating_sub(window);
    (0..s).map(|j| j >= lo && j <= query_pos).collect()
}

/// Fraction of the stored KV blocks a windowed decode step must fetch:
/// `min(window, s) / s` rounded up to block granularity — the flash-read
/// saving windowed models enjoy on HILOS.
pub fn window_read_fraction(s: u64, window: u64) -> f64 {
    if s == 0 {
        return 0.0;
    }
    let needed_tokens = window.min(s);
    let blocks_needed = needed_tokens.div_ceil(BLOCK_TOKENS as u64);
    let blocks_total = s.div_ceil(BLOCK_TOKENS as u64);
    (blocks_needed as f64 / blocks_total as f64).min(1.0)
}

/// Runs windowed attention for the newest token (`query_pos = s - 1`):
/// fetches only the blocks intersecting the window and masks the rest.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn sliding_window_attention(
    queries: &MatrixF16,
    keys: &MatrixF16,
    values: &MatrixF16,
    scale: f32,
    window: usize,
) -> Result<MatrixF32, KernelError> {
    let s = keys.rows();
    let d = keys.cols();
    if s == 0 {
        return attention_kernel(&AttentionInputs {
            queries,
            keys,
            values,
            valid: None,
            scale,
            host_tail: None,
        });
    }
    // Restrict to the blocks the window touches (block-aligned fetch).
    let lo_token = s.saturating_sub(window);
    let lo_block_start = (lo_token / BLOCK_TOKENS) * BLOCK_TOKENS;
    let mut k_win = MatrixF16::zeros(0, d);
    let mut v_win = MatrixF16::zeros(0, d);
    for j in lo_block_start..s {
        k_win.push_row(keys.row(j));
        v_win.push_row(values.row(j));
    }
    // Mask the partial leading block.
    let valid: Vec<bool> = (lo_block_start..s).map(|j| j >= lo_token).collect();
    attention_kernel(&AttentionInputs {
        queries,
        keys: &k_win,
        values: &v_win,
        valid: Some(&valid),
        scale,
        host_tail: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::attention_reference;

    fn toy(g: usize, s: usize, d: usize, seed: u64) -> (MatrixF16, MatrixF16, MatrixF16) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0
        };
        (
            MatrixF32::from_fn(g, d, |_, _| next()).to_f16(),
            MatrixF32::from_fn(s, d, |_, _| next()).to_f16(),
            MatrixF32::from_fn(s, d, |_, _| next()).to_f16(),
        )
    }

    #[test]
    fn mask_covers_exactly_the_window() {
        let m = sliding_window_mask(10, 7, 3);
        // Positions 5, 6, 7 valid.
        let valid: Vec<usize> = m.iter().enumerate().filter(|(_, &v)| v).map(|(i, _)| i).collect();
        assert_eq!(valid, vec![5, 6, 7]);
        // Window larger than history: everything up to the query valid.
        let m = sliding_window_mask(5, 2, 100);
        assert_eq!(m, vec![true, true, true, false, false]);
    }

    #[test]
    fn windowed_matches_reference_on_suffix() {
        let (q, k, v) = toy(1, 400, 32, 9);
        let window = 150;
        let out = sliding_window_attention(&q, &k, &v, 0.2, window).unwrap();
        // Reference over the exact last `window` tokens.
        let kf = k.to_f32();
        let vf = v.to_f32();
        let k_suffix = MatrixF32::from_fn(window, 32, |r, c| kf.at(400 - window + r, c));
        let v_suffix = MatrixF32::from_fn(window, 32, |r, c| vf.at(400 - window + r, c));
        let reference = attention_reference(&q.to_f32(), &k_suffix, &v_suffix, None, 0.2);
        assert!(out.max_abs_diff(&reference) < 1e-4);
    }

    #[test]
    fn full_window_equals_plain_attention() {
        let (q, k, v) = toy(2, 200, 16, 11);
        let windowed = sliding_window_attention(&q, &k, &v, 0.3, 10_000).unwrap();
        let plain = attention_kernel(&AttentionInputs {
            queries: &q,
            keys: &k,
            values: &v,
            valid: None,
            scale: 0.3,
            host_tail: None,
        })
        .unwrap();
        assert!(windowed.max_abs_diff(&plain) < 1e-6);
    }

    #[test]
    fn read_fraction_saves_traffic() {
        // 4K window over 128K context: ~1/32 of the flash reads.
        let f = window_read_fraction(128 * 1024, 4096);
        assert!((f - 1.0 / 32.0).abs() < 0.01, "fraction {f}");
        assert_eq!(window_read_fraction(1024, 4096), 1.0);
        assert_eq!(window_read_fraction(0, 128), 0.0);
        // Block granularity rounds up.
        let f = window_read_fraction(256, 1);
        assert_eq!(f, 0.5);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = sliding_window_mask(10, 5, 0);
    }
}
