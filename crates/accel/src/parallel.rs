//! Deterministic fan-out over query groups / KV shards.
//!
//! The build environment cannot fetch `rayon`, so this module provides
//! the small slice of it the workspace needs on top of
//! `std::thread::scope`: a work-stealing indexed map whose **output order
//! is deterministic** regardless of thread scheduling. Workers pull item
//! indices from a shared atomic counter and send `(index, result)` pairs
//! back over a channel; results are re-assembled by index, so the
//! reduction order — and therefore every downstream floating-point
//! aggregation — is identical to the serial order.
//!
//! Parallelism is opt-in: callers pass the worker count explicitly, and
//! `threads <= 1` runs inline with zero thread overhead.

use crate::kernel::{attention_kernel, AttentionInputs, KernelError};
use crate::tensor::MatrixF32;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Maps `f` over `items` on up to `threads` workers, returning results in
/// item order (index `i` of the output is `f(i, &items[i])`).
///
/// `f` runs at most once per item. With `threads <= 1` (or fewer than two
/// items) everything runs inline on the caller's thread. Panics in `f`
/// propagate to the caller when the scope joins.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(n);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);

    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, U)>();
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, f(i, &items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, result) in rx {
            slots[i] = Some(result);
        }
    });
    slots.into_iter().map(|slot| slot.expect("every index produced a result")).collect()
}

/// Runs the attention kernel over a batch of independent invocations
/// (e.g. the query groups of all heads, or one entry per KV shard) on up
/// to `threads` workers.
///
/// Each worker reuses its own thread-local
/// [`KernelScratch`](crate::KernelScratch), so the fan-out stays
/// allocation-free in steady state, and results come back in input order
/// — output `i` is exactly
/// what `attention_kernel(&batch[i])` returns, bit for bit, regardless of
/// the thread count.
pub fn attention_kernel_batch(
    batch: &[AttentionInputs<'_>],
    threads: usize,
) -> Vec<Result<MatrixF32, KernelError>> {
    parallel_map(batch, threads, |_, inputs| attention_kernel(inputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::MatrixF32;

    #[test]
    fn preserves_order_and_results() {
        let items: Vec<u64> = (0..100).collect();
        let serial = parallel_map(&items, 1, |i, &x| x * x + i as u64);
        for threads in [2, 4, 16] {
            let parallel = parallel_map(&items, threads, |i, &x| x * x + i as u64);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1u32, 2, 3];
        assert_eq!(parallel_map(&items, 64, |_, &x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn kernel_batch_matches_serial_bitwise() {
        let mut state = 77u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0
        };
        let shards: Vec<_> = (0..6)
            .map(|_| {
                let q = MatrixF32::from_fn(2, 16, |_, _| next()).to_f16();
                let k = MatrixF32::from_fn(150, 16, |_, _| next()).to_f16();
                let v = MatrixF32::from_fn(150, 16, |_, _| next()).to_f16();
                (q, k, v)
            })
            .collect();
        let batch: Vec<AttentionInputs<'_>> = shards
            .iter()
            .map(|(q, k, v)| AttentionInputs {
                queries: q,
                keys: k,
                values: v,
                valid: None,
                scale: 0.25,
                host_tail: None,
            })
            .collect();
        let serial = attention_kernel_batch(&batch, 1);
        let parallel = attention_kernel_batch(&batch, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            let ab: Vec<u32> = a.as_slice().iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb);
        }
    }
}
