//! Deterministic fan-out over query groups / KV shards.
//!
//! The build environment cannot fetch `rayon`, so this module provides
//! the small slice of it the workspace needs on top of
//! `std::thread::scope`: a work-stealing indexed map whose **output order
//! is deterministic** regardless of thread scheduling ([`parallel_map`]),
//! and a persistent owned-slot pool ([`with_fanout`]) for lockstep loops
//! that fan out *mutable* work every iteration — spawning a scope per
//! iteration would cost more than the iteration itself, so the workers
//! live for the whole loop and receive one batched message per round.
//! Workers pull item indices from a shared atomic counter (or whole
//! batches over a channel) and send indexed results back; results are
//! re-assembled by index, so the reduction order — and therefore every
//! downstream floating-point aggregation — is identical to the serial
//! order.
//!
//! Parallelism is opt-in: callers pass the worker count explicitly, and
//! `threads <= 1` runs inline with zero thread overhead.

use crate::kernel::{attention_kernel, AttentionInputs, KernelError};
use crate::tensor::MatrixF32;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Maps `f` over `items` on up to `threads` workers, returning results in
/// item order (index `i` of the output is `f(i, &items[i])`).
///
/// `f` runs at most once per item. With `threads <= 1` (or fewer than two
/// items) everything runs inline on the caller's thread. Panics in `f`
/// propagate to the caller when the scope joins.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(n);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);

    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, U)>();
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, f(i, &items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, result) in rx {
            slots[i] = Some(result);
        }
    });
    slots.into_iter().map(|slot| slot.expect("every index produced a result")).collect()
}

/// One worker's reply: the processed slots, or the payload of a panic
/// raised by the caller's closure (re-raised on the submitting thread).
type FanoutBatch<T, U> = Result<Vec<(usize, T, U)>, Box<dyn std::any::Any + Send>>;

enum FanoutInner<'a, T, U> {
    /// `threads <= 1`: apply the closure inline, no threads involved.
    Inline(&'a (dyn Fn(usize, &mut T) -> U + Sync)),
    /// Persistent workers, one inbox each, one shared result channel.
    Pool { txs: Vec<mpsc::Sender<Vec<(usize, T)>>>, rx: mpsc::Receiver<FanoutBatch<T, U>> },
}

/// A persistent fan-out pool over *owned* work slots, created by
/// [`with_fanout`].
///
/// Unlike [`parallel_map`] (borrowed items, one scope per call), a
/// `Fanout` keeps its workers alive across many [`Fanout::run`] calls:
/// each call moves the submitted slots to the workers — one batched
/// channel message per worker, not one per item — and moves them back
/// with their results. That makes it the right shape for lockstep
/// simulation loops that fan out `&mut` state every iteration: the
/// per-iteration cost is a handful of channel operations instead of a
/// thread spawn per round.
pub struct Fanout<'a, T, U> {
    inner: FanoutInner<'a, T, U>,
}

impl<T, U> Fanout<'_, T, U> {
    /// Processes every `(index, slot)` pair through the pool's closure
    /// and returns `(index, slot, result)` triples in **unspecified
    /// order** — callers re-assemble by index. Each slot is visited
    /// exactly once; with `threads <= 1` everything runs inline in
    /// submission order.
    ///
    /// # Panics
    ///
    /// A panic raised by the closure on any worker is re-raised here on
    /// the calling thread (remaining in-flight slots are dropped).
    pub fn run(&mut self, items: Vec<(usize, T)>) -> Vec<(usize, T, U)> {
        match &mut self.inner {
            FanoutInner::Inline(f) => items
                .into_iter()
                .map(|(i, mut item)| {
                    let u = f(i, &mut item);
                    (i, item, u)
                })
                .collect(),
            FanoutInner::Pool { txs, rx } => {
                let w = txs.len();
                let mut shares: Vec<Vec<(usize, T)>> = (0..w).map(|_| Vec::new()).collect();
                for (k, it) in items.into_iter().enumerate() {
                    shares[k % w].push(it);
                }
                let mut pending = 0usize;
                for (tx, share) in txs.iter().zip(shares) {
                    if share.is_empty() {
                        continue;
                    }
                    tx.send(share).expect("fanout worker exited before shutdown");
                    pending += 1;
                }
                let mut out = Vec::new();
                for _ in 0..pending {
                    match rx.recv().expect("fanout worker disconnected") {
                        Ok(mut results) => out.append(&mut results),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
                out
            }
        }
    }
}

/// Runs `body` with a [`Fanout`] pool of up to `threads` persistent
/// workers applying `f` to submitted slots; the workers are joined when
/// `body` returns (or unwinds).
///
/// `f` must produce the same result for the same `(index, slot)`
/// regardless of which worker runs it — under that (purely functional)
/// contract every [`Fanout::run`] outcome is bit-identical at any thread
/// count, including the inline `threads <= 1` path.
pub fn with_fanout<T, U, R>(
    threads: usize,
    f: impl Fn(usize, &mut T) -> U + Sync,
    body: impl FnOnce(&mut Fanout<'_, T, U>) -> R,
) -> R
where
    T: Send,
    U: Send,
{
    if threads <= 1 {
        return body(&mut Fanout { inner: FanoutInner::Inline(&f) });
    }
    std::thread::scope(|scope| {
        let (res_tx, res_rx) = mpsc::channel();
        let f = &f;
        let txs: Vec<mpsc::Sender<Vec<(usize, T)>>> = (0..threads)
            .map(|_| {
                let (tx, rx) = mpsc::channel::<Vec<(usize, T)>>();
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    while let Ok(batch) = rx.recv() {
                        // Catch panics from `f` and ship them back as a
                        // result: the submitter re-raises, and this
                        // worker exits cleanly so the scope join does
                        // not double-panic.
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            batch
                                .into_iter()
                                .map(|(i, mut item)| {
                                    let u = f(i, &mut item);
                                    (i, item, u)
                                })
                                .collect::<Vec<_>>()
                        }));
                        let poisoned = out.is_err();
                        if res_tx.send(out).is_err() || poisoned {
                            break;
                        }
                    }
                });
                tx
            })
            .collect();
        drop(res_tx);
        body(&mut Fanout { inner: FanoutInner::Pool { txs, rx: res_rx } })
        // The Fanout (and with it every work sender) drops here; workers
        // see the hangup, exit their loop, and the scope joins them —
        // also on the unwind path, so a panicking `body` cannot leak
        // workers.
    })
}

/// Runs the attention kernel over a batch of independent invocations
/// (e.g. the query groups of all heads, or one entry per KV shard) on up
/// to `threads` workers.
///
/// Each worker reuses its own thread-local
/// [`KernelScratch`](crate::KernelScratch), so the fan-out stays
/// allocation-free in steady state, and results come back in input order
/// — output `i` is exactly
/// what `attention_kernel(&batch[i])` returns, bit for bit, regardless of
/// the thread count.
pub fn attention_kernel_batch(
    batch: &[AttentionInputs<'_>],
    threads: usize,
) -> Vec<Result<MatrixF32, KernelError>> {
    parallel_map(batch, threads, |_, inputs| attention_kernel(inputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::MatrixF32;

    #[test]
    fn preserves_order_and_results() {
        let items: Vec<u64> = (0..100).collect();
        let serial = parallel_map(&items, 1, |i, &x| x * x + i as u64);
        for threads in [2, 4, 16] {
            let parallel = parallel_map(&items, threads, |i, &x| x * x + i as u64);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items() {
        let items = [1u32, 2, 3];
        assert_eq!(parallel_map(&items, 64, |_, &x| x * 10), vec![10, 20, 30]);
    }

    /// Drives a fanout at the given thread count through several rounds
    /// of mutating owned slots, returning the final slot values.
    fn drive_fanout(threads: usize, rounds: usize) -> Vec<u64> {
        let mut slots: Vec<Option<u64>> = (0..13).map(|i| Some(i as u64)).collect();
        with_fanout(
            threads,
            |i, slot: &mut u64| {
                *slot = slot.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
                *slot >> 33
            },
            |pool| {
                for round in 0..rounds {
                    // Submit a varying subset each round, like a lockstep
                    // loop skipping idle deployments.
                    let items: Vec<(usize, u64)> = (0..slots.len())
                        .filter(|i| (i + round) % 3 != 0)
                        .map(|i| (i, slots[i].take().expect("slot present")))
                        .collect();
                    for (i, slot, echo) in pool.run(items) {
                        assert_eq!(echo, slot >> 33, "result computed from updated slot");
                        slots[i] = Some(slot);
                    }
                }
            },
        );
        slots.into_iter().map(|s| s.expect("every slot returned")).collect()
    }

    #[test]
    fn fanout_matches_inline_across_thread_counts_and_rounds() {
        let serial = drive_fanout(1, 20);
        for threads in [2, 4, 8] {
            assert_eq!(drive_fanout(threads, 20), serial, "threads={threads}");
        }
    }

    #[test]
    fn fanout_handles_empty_and_oversubscribed_rounds() {
        with_fanout(
            4,
            |_, slot: &mut u32| *slot + 1,
            |pool| {
                assert!(pool.run(Vec::new()).is_empty());
                let one = pool.run(vec![(7, 41u32)]);
                assert_eq!(one, vec![(7, 41, 42)]);
            },
        );
    }

    #[test]
    #[should_panic(expected = "fanout worker boom")]
    fn fanout_propagates_worker_panics() {
        with_fanout(
            2,
            |i, _slot: &mut u8| {
                if i == 3 {
                    panic!("fanout worker boom");
                }
            },
            |pool| {
                pool.run((0..8).map(|i| (i, 0u8)).collect());
            },
        );
    }

    #[test]
    fn kernel_batch_matches_serial_bitwise() {
        let mut state = 77u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0
        };
        let shards: Vec<_> = (0..6)
            .map(|_| {
                let q = MatrixF32::from_fn(2, 16, |_, _| next()).to_f16();
                let k = MatrixF32::from_fn(150, 16, |_, _| next()).to_f16();
                let v = MatrixF32::from_fn(150, 16, |_, _| next()).to_f16();
                (q, k, v)
            })
            .collect();
        let batch: Vec<AttentionInputs<'_>> = shards
            .iter()
            .map(|(q, k, v)| AttentionInputs {
                queries: q,
                keys: k,
                values: v,
                valid: None,
                scale: 0.25,
                host_tail: None,
            })
            .collect();
        let serial = attention_kernel_batch(&batch, 1);
        let parallel = attention_kernel_batch(&batch, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            let ab: Vec<u32> = a.as_slice().iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(ab, bb);
        }
    }
}
