//! Softmax implementations: the conventional three-pass algorithm and the
//! paper's two-pass blocked algorithm (Algorithm 1).
//!
//! The three-pass version reads the score vector three times (global max,
//! sum of exponentials, normalization) — prohibitive off-chip traffic for
//! 100K-token sequences. Algorithm 1 fuses the first two passes by
//! stabilizing each block with its *local* maximum and rescaling the
//! running sum when the global maximum changes, exactly as the
//! softmax-statistics-aggregation unit does in hardware (Fig. 7b).

/// The paper's padding-mask constant: masked scores are forced to −10⁴
/// before softmax so padded tokens cannot influence the result (§5.4).
pub const MASK_VALUE: f32 = -1.0e4;

/// Running softmax statistics: the global maximum `m` and the running
/// denominator `z` (sum of exponentials referenced to `m`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftmaxStats {
    /// Running global maximum.
    pub m: f32,
    /// Running sum of `exp(x - m)`.
    pub z: f32,
}

impl Default for SoftmaxStats {
    fn default() -> Self {
        SoftmaxStats::new()
    }
}

impl SoftmaxStats {
    /// Initial statistics (`m = −∞`, `z = 0`), line 1 of Algorithm 1.
    pub fn new() -> Self {
        SoftmaxStats { m: f32::NEG_INFINITY, z: 0.0 }
    }

    /// Streaming update with one block of scores (lines 2–9 of
    /// Algorithm 1): computes the block's local max and partial sum, then
    /// merges them into the running statistics.
    pub fn update_block(&mut self, block: &[f32]) {
        if block.is_empty() {
            return;
        }
        // Local max (pipelined max-reduction tree in hardware).
        let m_b = block.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        // Partial sum referenced to the local max (parallel exp units +
        // adder tree).
        let s_b: f32 = block.iter().map(|&b| (b - m_b).exp()).sum();
        // Streaming update unit.
        if m_b > self.m {
            self.z = self.z * (self.m - m_b).exp() + s_b;
            self.m = m_b;
        } else {
            self.z += s_b * (m_b - self.m).exp();
        }
    }

    /// The normalized weight of a score under the final statistics
    /// (line 11 of Algorithm 1).
    pub fn normalize(&self, x: f32) -> f32 {
        (x - self.m).exp() / self.z
    }
}

/// Conventional numerically-stable three-pass softmax (the baseline the
/// paper's two-pass design replaces).
pub fn softmax_three_pass(x: &[f32]) -> Vec<f32> {
    if x.is_empty() {
        return Vec::new();
    }
    let m = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let z: f32 = x.iter().map(|&v| (v - m).exp()).sum();
    x.iter().map(|&v| (v - m).exp() / z).collect()
}

/// Two-pass blocked softmax (Algorithm 1): one streaming pass to build
/// [`SoftmaxStats`] block by block, one pass to normalize.
pub fn softmax_two_pass(x: &[f32], block_len: usize) -> Vec<f32> {
    let mut out = Vec::new();
    softmax_two_pass_into(x, block_len, &mut out);
    out
}

/// [`softmax_two_pass`] writing into a caller-owned buffer — the
/// zero-allocation variant for hot loops that normalize score vectors
/// repeatedly. `out` is cleared and refilled; its capacity is reused.
pub fn softmax_two_pass_into(x: &[f32], block_len: usize, out: &mut Vec<f32>) {
    assert!(block_len > 0, "block length must be positive");
    let mut stats = SoftmaxStats::new();
    for block in x.chunks(block_len) {
        stats.update_block(block);
    }
    out.clear();
    out.extend(x.iter().map(|&v| stats.normalize(v)));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn two_pass_matches_three_pass() {
        let x: Vec<f32> = (0..1000).map(|i| ((i * 37) % 101) as f32 * 0.13 - 5.0).collect();
        for block in [1, 7, 128, 1000, 4096] {
            let a = softmax_two_pass(&x, block);
            let b = softmax_three_pass(&x);
            assert_close(&a, &b, 1e-6);
        }
    }

    #[test]
    fn into_variant_reuses_buffer_and_matches() {
        let x: Vec<f32> = (0..300).map(|i| (i as f32 * 0.31).sin() * 6.0).collect();
        let direct = softmax_two_pass(&x, 128);
        let mut buf = Vec::new();
        softmax_two_pass_into(&x, 128, &mut buf);
        assert_eq!(direct, buf);
        // Second fill with a shorter input: buffer shrinks logically,
        // capacity is reused.
        let cap = buf.capacity();
        softmax_two_pass_into(&x[..100], 64, &mut buf);
        assert_eq!(buf.len(), 100);
        assert_eq!(buf.capacity(), cap);
        assert_eq!(buf, softmax_two_pass(&x[..100], 64));
    }

    #[test]
    fn sums_to_one() {
        let x: Vec<f32> = (0..500).map(|i| (i as f32).sin() * 8.0).collect();
        let y = softmax_two_pass(&x, 128);
        let sum: f32 = y.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum={sum}");
    }

    #[test]
    fn stable_for_large_magnitudes() {
        // Values that would overflow exp() without max subtraction.
        let x = vec![1000.0f32, 999.0, 998.0];
        let y = softmax_two_pass(&x, 2);
        assert!(y.iter().all(|v| v.is_finite()));
        assert!((y[0] - 0.6652).abs() < 1e-3);
    }

    #[test]
    fn masked_scores_get_zero_weight() {
        let x = vec![2.0f32, MASK_VALUE, 1.0, MASK_VALUE];
        let y = softmax_two_pass(&x, 128);
        assert_eq!(y[1], 0.0);
        assert_eq!(y[3], 0.0);
        assert!((y[0] + y[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn all_masked_degrades_to_uniform() {
        let x = vec![MASK_VALUE; 4];
        let y = softmax_two_pass(&x, 2);
        for v in y {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn streaming_update_order_independent_of_block_boundaries() {
        let x: Vec<f32> = (0..257).map(|i| (i as f32 * 0.7).cos() * 20.0).collect();
        let mut a = SoftmaxStats::new();
        for b in x.chunks(128) {
            a.update_block(b);
        }
        let mut b = SoftmaxStats::new();
        for c in x.chunks(13) {
            b.update_block(c);
        }
        assert!((a.m - b.m).abs() < 1e-6);
        assert!((a.z - b.z) / a.z < 1e-5);
    }

    #[test]
    fn descending_max_path_exercised() {
        // First block holds the global max: later blocks take the `else`
        // branch (line 9).
        let mut s = SoftmaxStats::new();
        s.update_block(&[10.0, 9.0]);
        let m_before = s.m;
        s.update_block(&[1.0, 2.0]);
        assert_eq!(s.m, m_before);
        let direct = softmax_three_pass(&[10.0, 9.0, 1.0, 2.0]);
        assert!((s.normalize(10.0) - direct[0]).abs() < 1e-6);
    }

    #[test]
    fn empty_inputs() {
        assert!(softmax_three_pass(&[]).is_empty());
        let mut s = SoftmaxStats::new();
        s.update_block(&[]);
        assert_eq!(s.m, f32::NEG_INFINITY);
    }
}
