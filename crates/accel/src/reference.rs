//! Reference attention implementations the accelerator kernel is validated
//! against.
//!
//! * [`attention_reference`] — textbook masked attention with a three-pass
//!   softmax and `f64` accumulation: the gold standard.
//! * [`attention_streaming`] — a FlashAttention-style single-pass online
//!   softmax in `f32`: the algorithm the paper's prefill baseline uses and
//!   the "lossless" comparison point of Fig. 18c.

use crate::softmax::MASK_VALUE;
use crate::tensor::{MatrixF16, MatrixF32};

/// Computes masked scaled-dot-product attention for a group of queries that
/// share one K/V cache (multi-head: group size 1; GQA: group size
/// `d_group`).
///
/// `queries` is `g×d`, `keys` and `values` are `s×d`; `valid[j] == false`
/// marks token `j` as padding (its score is forced to −10⁴ as in §5.4).
/// Scores are `scale · q·kⱼ`; accumulation is `f64`.
///
/// # Panics
///
/// Panics if shapes disagree or `s == 0`.
pub fn attention_reference(
    queries: &MatrixF32,
    keys: &MatrixF32,
    values: &MatrixF32,
    valid: Option<&[bool]>,
    scale: f32,
) -> MatrixF32 {
    let (g, d) = (queries.rows(), queries.cols());
    let s = keys.rows();
    assert!(s > 0, "attention over an empty context");
    assert_eq!(keys.cols(), d, "key dim mismatch");
    assert_eq!(values.rows(), s, "value rows mismatch");
    assert_eq!(values.cols(), d, "value dim mismatch");
    if let Some(v) = valid {
        assert_eq!(v.len(), s, "mask length mismatch");
    }

    let mut out = MatrixF32::zeros(g, d);
    for qi in 0..g {
        let q = queries.row(qi);
        // Pass 0: scores.
        let mut scores = vec![0.0f64; s];
        for (j, sc) in scores.iter_mut().enumerate() {
            let masked = valid.map(|v| !v[j]).unwrap_or(false);
            if masked {
                *sc = MASK_VALUE as f64;
            } else {
                let k = keys.row(j);
                let dot: f64 = q.iter().zip(k).map(|(&a, &b)| a as f64 * b as f64).sum();
                *sc = dot * scale as f64;
            }
        }
        // Pass 1: global max.
        let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // Pass 2: denominator.
        let z: f64 = scores.iter().map(|&x| (x - m).exp()).sum();
        // Pass 3: weighted sum of values.
        let mut acc = vec![0.0f64; d];
        for (j, &x) in scores.iter().enumerate() {
            let w = (x - m).exp() / z;
            let v = values.row(j);
            for (a, &vv) in acc.iter_mut().zip(v) {
                *a += w * vv as f64;
            }
        }
        for (c, &a) in acc.iter().enumerate() {
            out.set(qi, c, a as f32);
        }
    }
    out
}

/// FlashAttention-style streaming attention: one pass over the context with
/// an online softmax, rescaling the output accumulator whenever the running
/// maximum grows. `f32` throughout.
///
/// # Panics
///
/// Panics if shapes disagree or `s == 0`.
pub fn attention_streaming(
    queries: &MatrixF32,
    keys: &MatrixF32,
    values: &MatrixF32,
    valid: Option<&[bool]>,
    scale: f32,
) -> MatrixF32 {
    let (g, d) = (queries.rows(), queries.cols());
    let s = keys.rows();
    assert!(s > 0, "attention over an empty context");
    assert_eq!(keys.cols(), d, "key dim mismatch");
    assert_eq!(values.rows(), s, "value rows mismatch");
    assert_eq!(values.cols(), d, "value dim mismatch");
    if let Some(v) = valid {
        assert_eq!(v.len(), s, "mask length mismatch");
    }

    let mut out = MatrixF32::zeros(g, d);
    for qi in 0..g {
        let q = queries.row(qi);
        let mut m = f32::NEG_INFINITY;
        let mut z = 0.0f32;
        let mut acc = vec![0.0f32; d];
        for j in 0..s {
            let masked = valid.map(|v| !v[j]).unwrap_or(false);
            let x = if masked {
                MASK_VALUE
            } else {
                let k = keys.row(j);
                let dot: f32 = q.iter().zip(k).map(|(&a, &b)| a * b).sum();
                dot * scale
            };
            if x > m {
                let r = (m - x).exp();
                z = z * r + 1.0;
                for a in acc.iter_mut() {
                    *a *= r;
                }
                m = x;
                let v = values.row(j);
                for (a, &vv) in acc.iter_mut().zip(v) {
                    *a += vv;
                }
            } else {
                let w = (x - m).exp();
                z += w;
                let v = values.row(j);
                for (a, &vv) in acc.iter_mut().zip(v) {
                    *a += w * vv;
                }
            }
        }
        for (c, &a) in acc.iter().enumerate() {
            out.set(qi, c, a / z);
        }
    }
    out
}

/// [`attention_streaming`] over FP16 storage: rows are LUT-decoded on the
/// fly into small per-row buffers instead of widening whole matrices
/// first.
///
/// Bit-identical to `attention_streaming(&q.to_f32(), &k.to_f32(),
/// &v.to_f32(), ...)` (the decode LUT reproduces `F16::to_f32` exactly
/// and the arithmetic order is unchanged) while allocating `O(g·d)`
/// rather than `O(s·d)` — this is what the baselines use to model CPU
/// attention over an FP16 KV cache without materializing an FP32 copy of
/// the context.
///
/// # Panics
///
/// Panics if shapes disagree or `s == 0`.
pub fn attention_streaming_f16(
    queries: &MatrixF16,
    keys: &MatrixF16,
    values: &MatrixF16,
    valid: Option<&[bool]>,
    scale: f32,
) -> MatrixF32 {
    let (g, d) = (queries.rows(), queries.cols());
    let s = keys.rows();
    assert!(s > 0, "attention over an empty context");
    assert_eq!(keys.cols(), d, "key dim mismatch");
    assert_eq!(values.rows(), s, "value rows mismatch");
    assert_eq!(values.cols(), d, "value dim mismatch");
    if let Some(v) = valid {
        assert_eq!(v.len(), s, "mask length mismatch");
    }

    let mut q_dec = vec![0.0f32; g * d];
    queries.decode_rows_into(0, g, &mut q_dec);
    let mut k_row = vec![0.0f32; d];
    let mut v_row = vec![0.0f32; d];

    let mut out = MatrixF32::zeros(g, d);
    for qi in 0..g {
        let q = &q_dec[qi * d..(qi + 1) * d];
        let mut m = f32::NEG_INFINITY;
        let mut z = 0.0f32;
        let mut acc = vec![0.0f32; d];
        for j in 0..s {
            let masked = valid.map(|v| !v[j]).unwrap_or(false);
            let x = if masked {
                MASK_VALUE
            } else {
                keys.decode_row_into(j, &mut k_row);
                let dot: f32 = q.iter().zip(&k_row).map(|(&a, &b)| a * b).sum();
                dot * scale
            };
            values.decode_row_into(j, &mut v_row);
            if x > m {
                let r = (m - x).exp();
                z = z * r + 1.0;
                for a in acc.iter_mut() {
                    *a *= r;
                }
                m = x;
                for (a, &vv) in acc.iter_mut().zip(&v_row) {
                    *a += vv;
                }
            } else {
                let w = (x - m).exp();
                z += w;
                for (a, &vv) in acc.iter_mut().zip(&v_row) {
                    *a += w * vv;
                }
            }
        }
        for (c, &a) in acc.iter().enumerate() {
            out.set(qi, c, a / z);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(g: usize, s: usize, d: usize, seed: u64) -> (MatrixF32, MatrixF32, MatrixF32) {
        // Deterministic pseudo-random fill (xorshift) — no rand dependency.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0
        };
        let q = MatrixF32::from_fn(g, d, |_, _| next());
        let k = MatrixF32::from_fn(s, d, |_, _| next());
        let v = MatrixF32::from_fn(s, d, |_, _| next());
        (q, k, v)
    }

    #[test]
    fn single_token_returns_its_value() {
        let (q, k, v) = toy(1, 1, 8, 3);
        let out = attention_reference(&q, &k, &v, None, 0.35);
        for c in 0..8 {
            assert!((out.at(0, c) - v.at(0, c)).abs() < 1e-6);
        }
    }

    #[test]
    fn dominant_score_selects_its_value() {
        let d = 4;
        let q = MatrixF32::from_fn(1, d, |_, _| 10.0);
        let mut k = MatrixF32::zeros(3, d);
        for c in 0..d {
            k.set(1, c, 10.0); // token 1 has a huge score
        }
        let v = MatrixF32::from_fn(3, d, |r, _| r as f32);
        let out = attention_reference(&q, &k, &v, None, 1.0);
        for c in 0..d {
            assert!((out.at(0, c) - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn streaming_matches_reference() {
        let (q, k, v) = toy(3, 300, 16, 42);
        let a = attention_reference(&q, &k, &v, None, 0.25);
        let b = attention_streaming(&q, &k, &v, None, 0.25);
        assert!(a.max_abs_diff(&b) < 1e-4, "diff={}", a.max_abs_diff(&b));
    }

    #[test]
    fn streaming_f16_is_bit_identical_to_widened_f32_path() {
        let (q, k, v) = toy(3, 260, 32, 51);
        let (qh, kh, vh) = (q.to_f16(), k.to_f16(), v.to_f16());
        let mut valid = vec![true; 260];
        valid[200..].fill(false);
        for mask in [None, Some(valid.as_slice())] {
            let widened = attention_streaming(&qh.to_f32(), &kh.to_f32(), &vh.to_f32(), mask, 0.2);
            let direct = attention_streaming_f16(&qh, &kh, &vh, mask, 0.2);
            let a: Vec<u32> = widened.as_slice().iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = direct.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "mask={:?}", mask.is_some());
        }
    }

    #[test]
    fn mask_excludes_padding() {
        let (q, k, v) = toy(1, 10, 8, 9);
        let mut valid = vec![true; 10];
        valid[5..10].fill(false);
        let masked = attention_reference(&q, &k, &v, Some(&valid), 0.3);
        // Same result as truncating the context to the valid prefix.
        let k5 = MatrixF32::from_fn(5, 8, |r, c| k.at(r, c));
        let v5 = MatrixF32::from_fn(5, 8, |r, c| v.at(r, c));
        let truncated = attention_reference(&q, &k5, &v5, None, 0.3);
        assert!(masked.max_abs_diff(&truncated) < 1e-5);
    }

    #[test]
    fn group_queries_processed_independently() {
        let (q, k, v) = toy(4, 64, 8, 17);
        let all = attention_reference(&q, &k, &v, None, 0.2);
        for qi in 0..4 {
            let single = MatrixF32::from_fn(1, 8, |_, c| q.at(qi, c));
            let one = attention_reference(&single, &k, &v, None, 0.2);
            for c in 0..8 {
                assert!((all.at(qi, c) - one.at(0, c)).abs() < 1e-6);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty context")]
    fn empty_context_panics() {
        let q = MatrixF32::zeros(1, 4);
        let k = MatrixF32::zeros(0, 4);
        let v = MatrixF32::zeros(0, 4);
        let _ = attention_reference(&q, &k, &v, None, 1.0);
    }
}
