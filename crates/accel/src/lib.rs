//! # hilos-accel — the memory-efficient attention accelerator
//!
//! Functional and analytic models of the custom near-storage attention
//! accelerator of HILOS §4.4:
//!
//! * [`F16`] — software IEEE 754 binary16, the device's storage format,
//!   with a lazily-built 65536-entry decode LUT ([`f16_decode_lut`]) for
//!   the hot paths,
//! * [`attention_kernel`] — the bit-faithful functional model: blocked
//!   two-pass softmax (Algorithm 1), online 128×128 K-tile transpose,
//!   native GQA broadcast, −10⁴ padding masks, FP32 accumulation, and the
//!   delayed-writeback host-tail path. The compute path is
//!   zero-allocation in steady state (reusable [`KernelScratch`] arena,
//!   shared per-group block decode); [`attention_kernel_fused`] streams
//!   softmax statistics through the blocks without materializing the
//!   score vector, and [`attention_kernel_baseline`] preserves the
//!   original implementation as the golden reference,
//! * [`attention_kernel_batch`] / [`parallel_map`] — deterministic
//!   fan-out over query groups / KV shards,
//! * [`attention_reference`] / [`attention_streaming`] — gold references
//!   (three-pass softmax in `f64`; FlashAttention-style online softmax),
//! * [`sparse_topk_attention`] — the lossy InstAttention-style retrieval
//!   used for the Fig. 18c accuracy comparison,
//! * [`AccelTimingModel`] — cycle-level timing calibrated to Table 3,
//! * [`ResourceModel`] — KU15P utilization / power / frequency (Table 3),
//! * [`PerformanceEstimator`] — the §5.1 HLS-style estimator with its
//!   Pearson-correlation validation harness.
//!
//! # Example
//!
//! ```
//! use hilos_accel::{attention_kernel, AttentionInputs, MatrixF32};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let q = MatrixF32::from_fn(1, 64, |_, c| (c as f32 * 0.1).sin()).to_f16();
//! let k = MatrixF32::from_fn(256, 64, |r, c| ((r + c) as f32 * 0.01).cos()).to_f16();
//! let v = MatrixF32::from_fn(256, 64, |r, _| r as f32 / 256.0).to_f16();
//! let out = attention_kernel(&AttentionInputs {
//!     queries: &q,
//!     keys: &k,
//!     values: &v,
//!     valid: None,
//!     scale: 0.125,
//!     host_tail: None,
//! })?;
//! assert_eq!(out.rows(), 1);
//! assert_eq!(out.cols(), 64);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod estimator;
mod f16;
mod kernel;
mod parallel;
mod reference;
mod resources;
mod softmax;
mod sparse;
mod tensor;
mod timing;
mod window;

pub use estimator::{estimator_correlation, pearson, PerformanceEstimator};
pub use f16::{f16_decode_lut, F16};
pub use kernel::{
    attention_kernel, attention_kernel_baseline, attention_kernel_fused,
    attention_kernel_fused_with_scratch, attention_kernel_with_scratch, host_partial_scores,
    transpose_tile, AttentionInputs, HostTail, KernelError, KernelScratch, BLOCK_TOKENS, TILE_DIM,
};
#[cfg(feature = "simd")]
pub use kernel::{attention_kernel_simd, attention_kernel_simd_with_scratch};
pub use parallel::{attention_kernel_batch, parallel_map, with_fanout, Fanout};
pub use reference::{attention_reference, attention_streaming, attention_streaming_f16};
pub use resources::{FpgaPart, ResourceError, ResourceModel, ResourceReport};
pub use softmax::{
    softmax_three_pass, softmax_two_pass, softmax_two_pass_into, SoftmaxStats, MASK_VALUE,
};
pub use sparse::{sparse_read_fraction, sparse_topk_attention, EstimationNoise};
pub use tensor::{MatrixF16, MatrixF32};
pub use timing::AccelTimingModel;
pub use window::{sliding_window_attention, sliding_window_mask, window_read_fraction};
