//! Tolerance validation of the SIMD `QKᵀ` path (`--features simd`).
//!
//! The eight-lane scoring loop reorders the dot-product summation, so
//! [`attention_kernel_simd`] cannot be bit-identical to the serial
//! kernel; instead this suite bounds its divergence: every output
//! element must agree with the bit-exact kernel to a tight absolute +
//! relative tolerance across GQA shapes, masked padding, and
//! delayed-writeback host tails. The serial kernel stays golden — it is
//! separately pinned bit-for-bit against the baseline in `bitexact.rs`.
#![cfg(feature = "simd")]

use hilos_accel::{
    attention_kernel, attention_kernel_simd, attention_kernel_simd_with_scratch,
    host_partial_scores, AttentionInputs, HostTail, KernelScratch, MatrixF32,
};

fn toy(g: usize, s: usize, d: usize, seed: u64) -> (MatrixF32, MatrixF32, MatrixF32) {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0
    };
    let q = MatrixF32::from_fn(g, d, |_, _| next());
    let k = MatrixF32::from_fn(s, d, |_, _| next());
    let v = MatrixF32::from_fn(s, d, |_, _| next());
    (q, k, v)
}

/// Post-softmax outputs are convex combinations of V rows in `[-1, 1]`,
/// so an absolute + relative bound at a few f32 ulps of 1.0 is tight.
fn assert_close(a: &MatrixF32, b: &MatrixF32, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for (i, (&x, &y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        let tol = 1e-5 + 1e-4 * x.abs().max(y.abs());
        assert!(
            (x - y).abs() <= tol,
            "{what}: element {i} diverged beyond tolerance: serial {x} vs simd {y}"
        );
    }
}

#[test]
fn simd_kernel_matches_serial_within_tolerance() {
    // Shapes cover: head dims divisible by the 8 lanes, ragged remainders
    // (d=112, d=13), single-row and multi-block contexts, GQA groups.
    let shapes = [
        (1usize, 1usize, 8usize),
        (1, 300, 64),
        (2, 256, 16),
        (4, 129, 112),
        (8, 333, 128),
        (2, 77, 13),
    ];
    for &(g, s, d) in &shapes {
        let (q, k, v) = toy(g, s, d, 0x5eed ^ ((g * 31 + s) as u64));
        let (q, k, v) = (q.to_f16(), k.to_f16(), v.to_f16());
        let inputs = AttentionInputs {
            queries: &q,
            keys: &k,
            values: &v,
            valid: None,
            scale: 1.0 / (d as f32).sqrt(),
            host_tail: None,
        };
        let serial = attention_kernel(&inputs).unwrap();
        let simd = attention_kernel_simd(&inputs).unwrap();
        assert_close(&serial, &simd, &format!("g={g} s={s} d={d}"));
        let mut scratch = KernelScratch::new();
        let explicit = attention_kernel_simd_with_scratch(&inputs, &mut scratch).unwrap();
        assert_eq!(
            simd.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            explicit.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "explicit-scratch SIMD run must equal the thread-local one bitwise"
        );
    }
}

#[test]
fn simd_kernel_respects_masks_and_host_tail() {
    let (g, s, d, tail) = (4usize, 200usize, 64usize, 24usize);
    let (q, k, v) = toy(g, s + tail, d, 0xabcd);
    let qh = q.to_f16();
    // Mask out a stripe of stored tokens.
    let valid: Vec<bool> = (0..s).map(|i| i % 3 != 1).collect();
    let k_stored = MatrixF32::from_fn(s, d, |r, c| k.at(r, c)).to_f16();
    let v_stored = MatrixF32::from_fn(s, d, |r, c| v.at(r, c)).to_f16();
    let k_tail = MatrixF32::from_fn(tail, d, |r, c| k.at(s + r, c)).to_f16();
    let v_tail = MatrixF32::from_fn(tail, d, |r, c| v.at(s + r, c)).to_f16();
    let scale = 1.0 / (d as f32).sqrt();
    let scores = host_partial_scores(&qh, &k_tail, scale);
    let inputs = AttentionInputs {
        queries: &qh,
        keys: &k_stored,
        values: &v_stored,
        valid: Some(&valid),
        scale,
        host_tail: Some(HostTail { scores: &scores, values: &v_tail }),
    };
    let serial = attention_kernel(&inputs).unwrap();
    let simd = attention_kernel_simd(&inputs).unwrap();
    assert_close(&serial, &simd, "masked + host tail");
}
