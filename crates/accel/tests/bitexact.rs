//! Bit-exactness regression suite.
//!
//! The optimized attention path (LUT decode, shared GQA block decode,
//! flat scratch arena) and the fused streaming variant must reproduce the
//! original two-pass kernel — retained as `attention_kernel_baseline` —
//! **bit for bit**, across GQA shapes, masked padding, and
//! delayed-writeback host tails. Likewise the 65536-entry decode LUT must
//! equal the computed `F16::to_f32` on every bit pattern.

use hilos_accel::{
    attention_kernel, attention_kernel_baseline, attention_kernel_batch, attention_kernel_fused,
    attention_kernel_fused_with_scratch, attention_kernel_with_scratch, f16_decode_lut,
    host_partial_scores, AttentionInputs, HostTail, KernelScratch, MatrixF32, F16,
};

#[test]
fn lut_decode_equals_computed_to_f32_exhaustive() {
    // All 65536 bit patterns: zeros, subnormals, normals, infinities, and
    // every NaN payload/sign must decode to identical f32 bits.
    let lut = f16_decode_lut();
    for bits in 0u16..=u16::MAX {
        let h = F16::from_bits(bits);
        assert_eq!(
            lut[bits as usize].to_bits(),
            h.to_f32().to_bits(),
            "bits {bits:#06x}: lut {:#010x} vs computed {:#010x}",
            lut[bits as usize].to_bits(),
            h.to_f32().to_bits()
        );
        assert_eq!(h.to_f32_lut().to_bits(), h.to_f32().to_bits(), "bits {bits:#06x}");
    }
}

fn toy(g: usize, s: usize, d: usize, seed: u64) -> (MatrixF32, MatrixF32, MatrixF32) {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0
    };
    let q = MatrixF32::from_fn(g, d, |_, _| next());
    let k = MatrixF32::from_fn(s, d, |_, _| next());
    let v = MatrixF32::from_fn(s, d, |_, _| next());
    (q, k, v)
}

fn bits(m: &MatrixF32) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Asserts that the optimized, scratch-reusing, and fused kernels all
/// reproduce the baseline bit for bit on the given inputs.
fn assert_all_paths_bit_identical(inputs: &AttentionInputs<'_>, what: &str) {
    let golden = bits(&attention_kernel_baseline(inputs).expect(what));
    let fast = bits(&attention_kernel(inputs).expect(what));
    assert_eq!(golden, fast, "{what}: optimized kernel diverged from baseline");
    let fused = bits(&attention_kernel_fused(inputs).expect(what));
    assert_eq!(golden, fused, "{what}: fused kernel diverged from baseline");
    let mut scratch = KernelScratch::new();
    let explicit = bits(&attention_kernel_with_scratch(inputs, &mut scratch).expect(what));
    assert_eq!(golden, explicit, "{what}: explicit-scratch kernel diverged");
    let explicit_fused =
        bits(&attention_kernel_fused_with_scratch(inputs, &mut scratch).expect(what));
    assert_eq!(golden, explicit_fused, "{what}: explicit-scratch fused kernel diverged");
}

#[test]
fn golden_gqa_shapes() {
    // (g, s, d): single query, multi-block, GQA groups, non-power-of-two
    // head dims (OPT-30B's d=112), exact block boundaries, sub-block
    // contexts.
    let shapes = [
        (1usize, 1usize, 8usize),
        (1, 5, 8),
        (1, 127, 64),
        (1, 128, 64),
        (1, 300, 64),
        (2, 256, 16),
        (4, 129, 112),
        (5, 257, 32),
        (8, 1000, 80),
    ];
    for (i, &(g, s, d)) in shapes.iter().enumerate() {
        let (q, k, v) = toy(g, s, d, 100 + i as u64);
        let (qh, kh, vh) = (q.to_f16(), k.to_f16(), v.to_f16());
        let inputs = AttentionInputs {
            queries: &qh,
            keys: &kh,
            values: &vh,
            valid: None,
            scale: 1.0 / (d as f32).sqrt(),
            host_tail: None,
        };
        assert_all_paths_bit_identical(&inputs, &format!("g={g} s={s} d={d}"));
    }
}

#[test]
fn golden_masked_padding() {
    let (q, k, v) = toy(3, 300, 32, 7);
    let (qh, kh, vh) = (q.to_f16(), k.to_f16(), v.to_f16());
    // Padding tails of several lengths, including a fully-masked block
    // and a mask crossing a block boundary.
    for &valid_prefix in &[1usize, 100, 128, 130, 255, 299] {
        let mut valid = vec![true; 300];
        valid[valid_prefix..].fill(false);
        let inputs = AttentionInputs {
            queries: &qh,
            keys: &kh,
            values: &vh,
            valid: Some(&valid),
            scale: 0.2,
            host_tail: None,
        };
        assert_all_paths_bit_identical(&inputs, &format!("valid_prefix={valid_prefix}"));
    }
    // Interior holes (every third token masked).
    let holes: Vec<bool> = (0..300).map(|j| j % 3 != 1).collect();
    let inputs = AttentionInputs {
        queries: &qh,
        keys: &kh,
        values: &vh,
        valid: Some(&holes),
        scale: 0.2,
        host_tail: None,
    };
    assert_all_paths_bit_identical(&inputs, "interior holes");
}

#[test]
fn golden_host_tail() {
    let (q, k, v) = toy(3, 200, 32, 29);
    let (qh, kh, vh) = (q.to_f16(), k.to_f16(), v.to_f16());
    let scale = 1.0 / 32f32.sqrt();
    let kf = kh.to_f32();
    let vf = vh.to_f32();
    // Tail lengths: sub-block, exactly one block, crossing a block.
    for &split in &[199usize, 185, 72, 60] {
        let tail_len = 200 - split;
        let k_stored = MatrixF32::from_fn(split, 32, |r, c| kf.at(r, c)).to_f16();
        let v_stored = MatrixF32::from_fn(split, 32, |r, c| vf.at(r, c)).to_f16();
        let k_tail = MatrixF32::from_fn(tail_len, 32, |r, c| kf.at(split + r, c)).to_f16();
        let v_tail = MatrixF32::from_fn(tail_len, 32, |r, c| vf.at(split + r, c)).to_f16();
        let tail_scores = host_partial_scores(&qh, &k_tail, scale);
        let inputs = AttentionInputs {
            queries: &qh,
            keys: &k_stored,
            values: &v_stored,
            valid: None,
            scale,
            host_tail: Some(HostTail { scores: &tail_scores, values: &v_tail }),
        };
        assert_all_paths_bit_identical(&inputs, &format!("tail_len={tail_len}"));
    }
    // Tail-only context (everything buffered).
    let tail_scores = host_partial_scores(&qh, &kh, scale);
    let empty_k = hilos_accel::MatrixF16::zeros(0, 32);
    let empty_v = hilos_accel::MatrixF16::zeros(0, 32);
    let inputs = AttentionInputs {
        queries: &qh,
        keys: &empty_k,
        values: &empty_v,
        valid: None,
        scale,
        host_tail: Some(HostTail { scores: &tail_scores, values: &vh }),
    };
    assert_all_paths_bit_identical(&inputs, "tail only");
}

#[test]
fn golden_extreme_values() {
    // Saturated FP16 magnitudes, infinities from overflow, signed zeros,
    // and subnormals must flow through both paths identically.
    let d = 16;
    let s = 140;
    let q = MatrixF32::from_fn(2, d, |r, c| if (r + c) % 3 == 0 { 8.0 } else { -0.25 });
    let k = MatrixF32::from_fn(s, d, |r, c| match (r + c) % 5 {
        0 => 65504.0,
        1 => -65504.0,
        2 => f32::powi(2.0, -24),
        3 => -0.0,
        _ => 0.37,
    });
    let v = MatrixF32::from_fn(s, d, |r, c| ((r * 31 + c) % 17) as f32 - 8.0);
    let (qh, kh, vh) = (q.to_f16(), k.to_f16(), v.to_f16());
    let inputs = AttentionInputs {
        queries: &qh,
        keys: &kh,
        values: &vh,
        valid: None,
        scale: 1.0e-3,
        host_tail: None,
    };
    assert_all_paths_bit_identical(&inputs, "extreme values");
}

#[test]
fn golden_parallel_batch() {
    // The deterministic fan-out must return, per shard, exactly the
    // baseline's bits regardless of thread count.
    let shards: Vec<_> = (0..5)
        .map(|i| {
            let (q, k, v) = toy(2 + i % 3, 100 + 40 * i, 24, 500 + i as u64);
            (q.to_f16(), k.to_f16(), v.to_f16())
        })
        .collect();
    let batch: Vec<AttentionInputs<'_>> = shards
        .iter()
        .map(|(q, k, v)| AttentionInputs {
            queries: q,
            keys: k,
            values: v,
            valid: None,
            scale: 0.2,
            host_tail: None,
        })
        .collect();
    for threads in [1usize, 3, 8] {
        let outs = attention_kernel_batch(&batch, threads);
        for (inputs, out) in batch.iter().zip(&outs) {
            let golden = bits(&attention_kernel_baseline(inputs).unwrap());
            assert_eq!(golden, bits(out.as_ref().unwrap()), "threads={threads}");
        }
    }
}
