//! Property-based tests for the accelerator's numerics.

use hilos_accel::{
    attention_kernel, attention_reference, host_partial_scores, softmax_three_pass,
    softmax_two_pass, AttentionInputs, HostTail, MatrixF32, F16,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// f32 -> f16 -> f32 never moves a value by more than half a ulp of the
    /// f16 grid (for in-range inputs).
    #[test]
    fn f16_round_trip_error_bounded(x in -60000.0f32..60000.0) {
        let h = F16::from_f32(x).to_f32();
        // Half ulp at |x|: 2^-11 relative for normals, absolute 2^-25 floor.
        let tol = (x.abs() * f32::powi(2.0, -11)).max(f32::powi(2.0, -25));
        prop_assert!((h - x).abs() <= tol, "x={x} h={h}");
    }

    /// from_f32 is monotone non-decreasing.
    #[test]
    fn f16_conversion_monotone(a in -1e5f32..1e5, b in -1e5f32..1e5) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let hl = F16::from_f32(lo).to_f32();
        let hh = F16::from_f32(hi).to_f32();
        prop_assert!(hl <= hh);
    }

    /// Two-pass softmax equals three-pass softmax for any block size.
    #[test]
    fn softmax_two_pass_equals_three_pass(
        xs in prop::collection::vec(-50.0f32..50.0, 1..600),
        block in 1usize..300,
    ) {
        let a = softmax_two_pass(&xs, block);
        let b = softmax_three_pass(&xs);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    /// Softmax outputs are a probability distribution.
    #[test]
    fn softmax_is_distribution(xs in prop::collection::vec(-30.0f32..30.0, 1..400)) {
        let y = softmax_two_pass(&xs, 128);
        prop_assert!(y.iter().all(|&v| (0.0..=1.0f32).contains(&v)));
        let sum: f32 = y.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-3, "sum={sum}");
    }

    /// The accelerator kernel matches the f64 reference on random inputs.
    #[test]
    fn kernel_matches_reference(
        s in 1usize..400,
        d_pow in 2u32..7,
        g in 1usize..6,
        seed in any::<u64>(),
    ) {
        let d = 1usize << d_pow;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0
        };
        let q = MatrixF32::from_fn(g, d, |_, _| next()).to_f16();
        let k = MatrixF32::from_fn(s, d, |_, _| next()).to_f16();
        let v = MatrixF32::from_fn(s, d, |_, _| next()).to_f16();
        let scale = 1.0 / (d as f32).sqrt();
        let out = attention_kernel(&AttentionInputs {
            queries: &q, keys: &k, values: &v, valid: None, scale, host_tail: None,
        }).unwrap();
        let reference = attention_reference(&q.to_f32(), &k.to_f32(), &v.to_f32(), None, scale);
        let diff = out.max_abs_diff(&reference);
        prop_assert!(diff < 2e-4, "diff={diff} (s={s} d={d} g={g})");
    }

    /// Splitting the context between stored KV and a buffered host tail
    /// never changes the result (delayed-writeback correctness), for any
    /// split point.
    #[test]
    fn writeback_split_invariant(
        s in 2usize..260,
        split_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let d = 16usize;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0
        };
        let q = MatrixF32::from_fn(1, d, |_, _| next()).to_f16();
        let kf = MatrixF32::from_fn(s, d, |_, _| next());
        let vf = MatrixF32::from_fn(s, d, |_, _| next());
        let (k, v) = (kf.to_f16(), vf.to_f16());
        let scale = 0.25f32;

        let full = attention_kernel(&AttentionInputs {
            queries: &q, keys: &k, values: &v, valid: None, scale, host_tail: None,
        }).unwrap();

        let split = ((s as f64 * split_frac) as usize).clamp(1, s - 1);
        let k_stored = MatrixF32::from_fn(split, d, |r, c| kf.at(r, c)).to_f16();
        let v_stored = MatrixF32::from_fn(split, d, |r, c| vf.at(r, c)).to_f16();
        let k_tail = MatrixF32::from_fn(s - split, d, |r, c| kf.at(split + r, c)).to_f16();
        let v_tail = MatrixF32::from_fn(s - split, d, |r, c| vf.at(split + r, c)).to_f16();
        let scores = host_partial_scores(&q, &k_tail, scale);
        let with_tail = attention_kernel(&AttentionInputs {
            queries: &q, keys: &k_stored, values: &v_stored, valid: None, scale,
            host_tail: Some(HostTail { scores: &scores, values: &v_tail }),
        }).unwrap();

        let diff = full.max_abs_diff(&with_tail);
        prop_assert!(diff < 2e-4, "split={split} diff={diff}");
    }
}
