//! Criterion benches for the functional compute kernels (Table 3 /
//! Fig. 12a counterparts at functional level).
//!
//! `attention_2k_d64` and `attention_32k_d64` compare the optimized
//! kernel (`hilos_kernel`), the fused streaming variant, and the pre-PR
//! baseline (`hilos_kernel_baseline`) — the speedup the `bench_kernels`
//! smoke binary records in `BENCH_kernels.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use hilos_accel::{
    attention_kernel, attention_kernel_baseline, attention_kernel_fused, attention_reference,
    attention_streaming, softmax_three_pass, softmax_two_pass, sparse_topk_attention,
    AttentionInputs, MatrixF32, F16,
};
use std::hint::black_box;

fn toy(g: usize, s: usize, d: usize) -> (MatrixF32, MatrixF32, MatrixF32) {
    let mut state = 12345u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0
    };
    (
        MatrixF32::from_fn(g, d, |_, _| next()),
        MatrixF32::from_fn(s, d, |_, _| next()),
        MatrixF32::from_fn(s, d, |_, _| next()),
    )
}

fn bench_attention(c: &mut Criterion) {
    let (q, k, v) = toy(1, 2048, 64);
    let (qh, kh, vh) = (q.to_f16(), k.to_f16(), v.to_f16());
    let inputs = AttentionInputs {
        queries: &qh,
        keys: &kh,
        values: &vh,
        valid: None,
        scale: 0.125,
        host_tail: None,
    };
    let mut group = c.benchmark_group("attention_2k_d64");
    group.sample_size(20);
    group.bench_function("hilos_kernel", |b| {
        b.iter(|| attention_kernel(black_box(&inputs)).unwrap())
    });
    group.bench_function("hilos_kernel_fused", |b| {
        b.iter(|| attention_kernel_fused(black_box(&inputs)).unwrap())
    });
    group.bench_function("hilos_kernel_baseline", |b| {
        b.iter(|| attention_kernel_baseline(black_box(&inputs)).unwrap())
    });
    group.bench_function("reference_f64", |b| {
        b.iter(|| attention_reference(black_box(&q), black_box(&k), black_box(&v), None, 0.125))
    });
    group.bench_function("flash_streaming", |b| {
        b.iter(|| attention_streaming(black_box(&q), black_box(&k), black_box(&v), None, 0.125))
    });
    group.bench_function("instattention_topk_1_8", |b| {
        b.iter(|| sparse_topk_attention(black_box(&inputs), 0.125, None).unwrap())
    });
    group.finish();
}

fn bench_attention_long_context(c: &mut Criterion) {
    // GQA group of 4 over a 32K-token shard: the shape the near-storage
    // kernel sweeps per decode step at serving scale.
    let (q, k, v) = toy(4, 32 * 1024, 64);
    let (qh, kh, vh) = (q.to_f16(), k.to_f16(), v.to_f16());
    let inputs = AttentionInputs {
        queries: &qh,
        keys: &kh,
        values: &vh,
        valid: None,
        scale: 0.125,
        host_tail: None,
    };
    let mut group = c.benchmark_group("attention_32k_d64");
    group.sample_size(10);
    group.bench_function("hilos_kernel", |b| {
        b.iter(|| attention_kernel(black_box(&inputs)).unwrap())
    });
    group.bench_function("hilos_kernel_fused", |b| {
        b.iter(|| attention_kernel_fused(black_box(&inputs)).unwrap())
    });
    group.bench_function("hilos_kernel_baseline", |b| {
        b.iter(|| attention_kernel_baseline(black_box(&inputs)).unwrap())
    });
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let xs: Vec<f32> = (0..32 * 1024).map(|i| ((i * 37) % 1001) as f32 * 0.01 - 5.0).collect();
    let mut group = c.benchmark_group("softmax_32k");
    group.bench_function("two_pass_block128", |b| b.iter(|| softmax_two_pass(black_box(&xs), 128)));
    group.bench_function("three_pass", |b| b.iter(|| softmax_three_pass(black_box(&xs))));
    group.finish();
}

fn bench_f16(c: &mut Criterion) {
    let values: Vec<f32> = (0..4096).map(|i| i as f32 * 0.37 - 700.0).collect();
    c.bench_function("f16_round_trip_4k", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &v in &values {
                acc += F16::from_f32(black_box(v)).to_f32();
            }
            acc
        })
    });
    let halves: Vec<F16> = values.iter().map(|&v| F16::from_f32(v)).collect();
    c.bench_function("f16_lut_decode_4k", |b| {
        b.iter(|| {
            let lut = hilos_accel::f16_decode_lut();
            let mut acc = 0.0f32;
            for &h in &halves {
                acc += lut[black_box(h).to_bits() as usize];
            }
            acc
        })
    });
}

criterion_group!(benches, bench_attention, bench_attention_long_context, bench_softmax, bench_f16);
criterion_main!(benches);
