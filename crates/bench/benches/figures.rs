//! Criterion benches, one group per paper table/figure: each benchmarks a
//! scaled-down unit of the experiment that `repro <id>` runs in full.

use criterion::{criterion_group, criterion_main, Criterion};
use hilos_accel::{AccelTimingModel, PerformanceEstimator, ResourceModel};
use hilos_baselines::{accuracy_comparison, FlexGenSystem, KvLocation, VllmMultiNode};
use hilos_core::{HilosConfig, HilosSystem, WritebackManager};
use hilos_llm::{footprint, presets, BatchSpec, RequestClass};
use hilos_metrics::EnduranceModel;
use hilos_platform::SystemSpec;
use std::hint::black_box;

fn hilos(n: usize) -> HilosSystem {
    HilosSystem::new(&SystemSpec::a100_smartssd(n), &presets::opt_66b(), &HilosConfig::new(n))
        .unwrap()
        .with_sim_layers(2)
}

fn flex_ssd() -> FlexGenSystem {
    FlexGenSystem::new(&SystemSpec::a100_pm9a3(4), &presets::opt_66b(), KvLocation::SsdArray)
        .unwrap()
        .with_sim_layers(2)
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2_footprint_breakdown", |b| {
        b.iter(|| footprint(&presets::opt_175b(), &BatchSpec::new(16, 128 * 1024, 64)))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let sys = HilosSystem::new(
        &SystemSpec::a100_smartssd(16),
        &presets::opt_66b(),
        &HilosConfig::ans_only(16),
    )
    .unwrap()
    .with_sim_layers(2);
    c.bench_function("fig4_ans_decode_step", |b| {
        b.iter(|| sys.run_decode(black_box(16), 16 * 1024, 1).unwrap())
    });
}

fn bench_table3(c: &mut Criterion) {
    let model = ResourceModel::smartssd();
    c.bench_function("table3_resource_report", |b| {
        b.iter(|| {
            for d in [1u32, 4, 5] {
                black_box(model.report(d).unwrap());
            }
        })
    });
}

fn bench_estimator(c: &mut Criterion) {
    let est = PerformanceEstimator::smartssd();
    c.bench_function("estimator_kernel_seconds", |b| {
        b.iter(|| est.kernel_seconds(black_box(32 * 1024), 128, 5, 16))
    });
}

fn bench_fig10(c: &mut Criterion) {
    let h = hilos(8);
    let f = flex_ssd();
    let mut group = c.benchmark_group("fig10_decode_step");
    group.sample_size(10);
    group.bench_function("hilos_8dev", |b| b.iter(|| h.run_decode(16, 32 * 1024, 1).unwrap()));
    group.bench_function("flex_ssd", |b| b.iter(|| f.run_decode(16, 32 * 1024, 1).unwrap()));
    group.finish();
}

fn bench_fig12(c: &mut Criterion) {
    c.bench_function("fig12_kernel_timing", |b| {
        b.iter(|| {
            for d in [1u32, 4, 5] {
                black_box(AccelTimingModel::smartssd(d).kv_bytes_per_sec(128));
            }
        })
    });
}

fn bench_fig13(c: &mut Criterion) {
    c.bench_function("fig13_writeback_cycle", |b| {
        b.iter(|| {
            let mut wb = WritebackManager::new(16);
            let mut spills = 0u32;
            for _ in 0..64 {
                if wb.on_step().spill_now {
                    spills += 1;
                }
            }
            spills
        })
    });
}

fn bench_fig14(c: &mut Criterion) {
    let h = hilos(8);
    c.bench_function("fig14_prefill", |b| {
        b.iter(|| h.run_prefill(black_box(16), 16 * 1024).unwrap())
    });
}

fn bench_fig16(c: &mut Criterion) {
    let e = EnduranceModel::smartssd_array(16);
    c.bench_function("fig16b_endurance_model", |b| {
        b.iter(|| {
            e.hilos_request_bytes(&presets::opt_175b(), RequestClass::Long, black_box(0.5), 16)
        })
    });
}

fn bench_fig17(c: &mut Criterion) {
    let v = VllmMultiNode::paper_testbed();
    c.bench_function("fig17b_vllm_step_model", |b| {
        b.iter(|| v.step_seconds(&presets::opt_175b(), 1, black_box(16 * 1024)).unwrap())
    });
}

fn bench_fig18(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18c_accuracy");
    group.sample_size(10);
    group.bench_function("one_task_1k", |b| {
        b.iter(|| accuracy_comparison(black_box(1024), 1, 0.125).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig2,
    bench_fig4,
    bench_table3,
    bench_estimator,
    bench_fig10,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_fig16,
    bench_fig17,
    bench_fig18
);
criterion_main!(benches);
