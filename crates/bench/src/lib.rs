//! # hilos-bench — the reproduction harness
//!
//! One experiment module per table/figure of the paper's evaluation. The
//! `repro` binary dispatches to them; each returns its rendered table so
//! integration tests can assert on the numbers. `EXPERIMENTS.md` records
//! paper-vs-measured for every experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use hilos_baselines::{BaselineError, DeepSpeedUvm, FlexGenSystem, KvLocation};
use hilos_core::{CoreError, HilosConfig, HilosSystem, RunReport};
use hilos_llm::ModelConfig;
use hilos_platform::SystemSpec;

/// Layers materialized per simulated step throughout the harness (the
/// makespan is scaled to full model depth; 4 keeps sweeps fast while past
/// the pipeline warm-up).
pub const SIM_LAYERS: u32 = 4;

/// Output length used when sampling decode steps in sweeps.
pub const SAMPLE_OUTPUT: u64 = 8;

/// Runs full HILOS with `n` devices.
///
/// # Errors
///
/// Propagates capacity/validation errors.
pub fn run_hilos(
    n: usize,
    model: &ModelConfig,
    batch: u32,
    ctx: u64,
) -> Result<RunReport, CoreError> {
    run_hilos_config(&SystemSpec::a100_smartssd(n), model, &HilosConfig::new(n), batch, ctx)
}

/// Runs HILOS with an explicit spec and configuration.
///
/// # Errors
///
/// Propagates capacity/validation errors.
pub fn run_hilos_config(
    spec: &SystemSpec,
    model: &ModelConfig,
    config: &HilosConfig,
    batch: u32,
    ctx: u64,
) -> Result<RunReport, CoreError> {
    HilosSystem::new(spec, model, config)?.with_sim_layers(SIM_LAYERS).run_decode(
        batch,
        ctx,
        SAMPLE_OUTPUT,
    )
}

/// Runs FLEX(SSD): four PM9A3 drives on dedicated root ports.
///
/// # Errors
///
/// Propagates capacity errors.
pub fn run_flex_ssd(model: &ModelConfig, batch: u32, ctx: u64) -> Result<RunReport, BaselineError> {
    FlexGenSystem::new(&SystemSpec::a100_pm9a3(4), model, KvLocation::SsdArray)?
        .with_sim_layers(SIM_LAYERS)
        .run_decode(batch, ctx, SAMPLE_OUTPUT)
}

/// Runs FLEX(16 PCIe 3.0 SSDs): the SmartSSD chassis with FPGAs disabled.
///
/// # Errors
///
/// Propagates capacity errors.
pub fn run_flex_jbof(
    model: &ModelConfig,
    batch: u32,
    ctx: u64,
) -> Result<RunReport, BaselineError> {
    FlexGenSystem::new(&SystemSpec::a100_chassis_no_fpga(16), model, KvLocation::SsdArray)?
        .with_sim_layers(SIM_LAYERS)
        .run_decode(batch, ctx, SAMPLE_OUTPUT)
}

/// Runs FLEX(DRAM) at the largest feasible batch ≤ `batch`, as the paper
/// does when host memory binds. Returns the used batch with the report.
///
/// # Errors
///
/// Returns the OOM error if even batch 1 does not fit.
pub fn run_flex_dram_autobatch(
    model: &ModelConfig,
    batch: u32,
    ctx: u64,
) -> Result<(u32, RunReport), BaselineError> {
    let sys = FlexGenSystem::new(&SystemSpec::a100_pm9a3(4), model, KvLocation::HostDram)?
        .with_sim_layers(SIM_LAYERS);
    match sys.max_batch(ctx, SAMPLE_OUTPUT, batch) {
        Some(bs) => Ok((bs, sys.run_decode(bs, ctx, SAMPLE_OUTPUT)?)),
        None => Err(BaselineError::HostOom {
            needed: model.kv_bytes_per_token() * ctx,
            available: SystemSpec::a100_pm9a3(4).host.dram_bytes,
        }),
    }
}

/// Runs DS+UVM(DRAM) at the largest feasible batch ≤ `batch`.
///
/// # Errors
///
/// Returns the OOM error if even batch 1 does not fit.
pub fn run_deepspeed_autobatch(
    model: &ModelConfig,
    batch: u32,
    ctx: u64,
) -> Result<(u32, RunReport), BaselineError> {
    let spec = SystemSpec::a100_pm9a3(4);
    let ds = DeepSpeedUvm::new(&spec, model)?.with_sim_layers(SIM_LAYERS);
    let mut bs = batch;
    loop {
        match ds.check_capacity(bs, ctx, SAMPLE_OUTPUT) {
            Ok(()) => return Ok((bs, ds.run_decode(bs, ctx, SAMPLE_OUTPUT)?)),
            Err(e) if bs == 1 => return Err(e),
            Err(_) => bs /= 2,
        }
    }
}

/// Formats a tokens/s value or an OOM marker.
pub fn tps_cell<E: std::fmt::Display>(r: &Result<f64, E>) -> String {
    match r {
        Ok(v) => format!("{v:.4}"),
        Err(_) => "CPU OOM".to_string(),
    }
}

/// Formats a normalized value or an OOM marker.
pub fn norm_cell(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}x"),
        None => "OOM".to_string(),
    }
}
