//! `bench_cluster` — the multi-deployment routing smoke bench.
//!
//! Two measurements, recorded into `BENCH_cluster.json` (current
//! directory, or the path given as the first argument):
//!
//! 1. **Routing comparison** — the seeded contended trace (384 Azure-mix
//!    requests, one arrival every ~10 steps) balanced across three
//!    heterogeneous deployments (8 healthy devices / 6 with one device
//!    at half bandwidth / 4 with one device at quarter bandwidth) under
//!    round-robin, join-shortest-queue and ledger-pressure routing. The
//!    simulation is bit-deterministic, so CI gates the exact ordering:
//!    `ledger-pressure ≥ join-shortest-queue ≥ round-robin` on SLO
//!    goodput, and records the ledger-pressure vs round-robin margin.
//! 2. **Cross-deployment re-dispatch** — a 2-deployment priority-preempt
//!    cluster under round-robin routing on a balanced-load trace:
//!    preempted victims must actually migrate between deployments and
//!    every request must still complete exactly once.
//! 3. **Elastic vs reserved fleet** — the seeded flash-crowd trace (384
//!    requests in 6 bursts separated by long calm gaps) served by an
//!    elastic 3-slot fleet under cost-normalized routing, autoscaled by
//!    the reactive target-pressure scaler and by the hybrid-histogram
//!    keep-alive predictor, against the same fleet statically reserved
//!    at peak for the whole run. CI gates: the keep-alive fleet beats
//!    the reserved one on $/1k-goodput-tokens by ≥1.3×, with zero lost
//!    requests across every scale-up, drain and retire.
//!
//! ```text
//! Usage: bench_cluster [output.json]
//! ```

use hilos_core::cluster::{
    AutoscalePolicy, ClusterEngine, CostNormalizedPressure, ElasticClusterEngine, ElasticConfig,
    HybridHistogramKeepAlive, JoinShortestQueue, LedgerPressure, RoundRobin, RoutingPolicy,
    TargetPressureScaler,
};
use hilos_core::{HilosConfig, HilosSystem, PriorityPreempt, ServeConfig, ServeEngine};
use hilos_llm::{presets, TraceConfig};
use hilos_metrics::FleetBill;
use hilos_platform::SystemSpec;
use std::time::Instant;

/// Requests in the routing-comparison trace.
const REQUESTS: usize = 384;
/// Mean arrival gap (serving steps) of the contended trace.
const ARRIVAL_GAP: u64 = 10;
/// Trace seed (shared with `tests/cluster.rs`).
const SEED: u64 = 42;

fn hilos(n: usize) -> HilosSystem {
    HilosSystem::new(&SystemSpec::a100_smartssd(n), &presets::opt_30b(), &HilosConfig::new(n))
        .unwrap()
        .with_sim_layers(1)
}

/// The seeded heterogeneous cluster: distinct device counts *and*
/// degradation profiles, so capacity-blind routing leaves goodput on the
/// table.
fn heterogeneous_deployments() -> Vec<ServeEngine> {
    vec![
        ServeEngine::new(hilos(8), ServeConfig::new(8)).unwrap(),
        ServeEngine::new(hilos(6).with_degraded_device(1, 0.5), ServeConfig::new(8)).unwrap(),
        ServeEngine::new(hilos(4).with_degraded_device(0, 0.25), ServeConfig::new(8)).unwrap(),
    ]
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_cluster.json".to_string());

    // -- 1: three-way routing-policy comparison --
    let trace = TraceConfig {
        mean_interarrival_steps: ARRIVAL_GAP,
        ..TraceConfig::azure_mix(REQUESTS, SEED)
    }
    .generate()
    .expect("valid trace config");
    let mut goodputs = Vec::new();
    let policy_rows: Vec<String> = [
        Box::new(RoundRobin::new()) as Box<dyn RoutingPolicy>,
        Box::new(JoinShortestQueue),
        Box::new(LedgerPressure::new()),
    ]
    .into_iter()
    .map(|routing| {
        let name = routing.name();
        let mut cluster = ClusterEngine::new(heterogeneous_deployments(), routing);
        let start = Instant::now();
        let r = cluster.run_trace(&trace).unwrap();
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(r.completed(), trace.len(), "{name}: trace must complete");
        goodputs.push(r.slo_token_goodput());
        eprintln!(
            "routing {name}: slo_goodput {:.2} tok/s, hit {:.1}%, makespan {:.0}s, \
             dispatched {:?}, {} redispatches ({wall:.3}s wall)",
            r.slo_token_goodput(),
            r.slo_hit_rate() * 100.0,
            r.elapsed_s(),
            r.dispatched,
            r.redispatches,
        );
        let dispatched = r.dispatched.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
        format!(
            "{{\"routing\": \"{name}\", \"slo_goodput_tokens_per_second\": {:.4}, \
             \"slo_hit_rate\": {:.4}, \"tokens_per_second\": {:.4}, \
             \"ttft_p95_seconds\": {:.4}, \"makespan_seconds\": {:.4}, \
             \"dispatched\": [{dispatched}], \"dispatch_imbalance\": {:.4}, \
             \"redispatches\": {}}}",
            r.slo_token_goodput(),
            r.slo_hit_rate(),
            r.tokens_per_second(),
            r.ttft_stats().p95,
            r.elapsed_s(),
            r.dispatch_imbalance(),
            r.redispatches,
        )
    })
    .collect();
    let margin_vs_rr = goodputs[2] / goodputs[0];
    eprintln!("ledger-pressure vs round-robin margin: {margin_vs_rr:.3}x");

    // -- 2: cross-deployment re-dispatch of preempted requests --
    let balanced = TraceConfig { mean_interarrival_steps: 30, ..TraceConfig::azure_mix(128, 33) }
        .generate()
        .expect("valid trace config");
    let preempting = |sys: HilosSystem| {
        ServeEngine::with_policy(sys, ServeConfig::new(3), Box::new(PriorityPreempt::new()))
            .unwrap()
    };
    let mut cluster = ClusterEngine::new(
        vec![preempting(hilos(4)), preempting(hilos(4).with_degraded_device(0, 0.5))],
        Box::new(RoundRobin::new()),
    );
    let rd = cluster.run_trace(&balanced).unwrap();
    assert_eq!(rd.completed(), balanced.len(), "re-dispatch must lose nothing");
    eprintln!(
        "re-dispatch: {} preemptions, {} crossed deployments, {} completed",
        rd.preemptions(),
        rd.redispatches,
        rd.completed(),
    );

    // -- 3: elastic vs reserved fleet on the bursty trace --
    const BURSTY_REQUESTS: usize = 512;
    const BURSTS: u32 = 8;
    const CALM_GAP: u64 = 2400;
    let bursty =
        TraceConfig::flash_crowd_mix(BURSTY_REQUESTS, SEED, BURSTS, CALM_GAP).generate().unwrap();
    let elastic_slots = || {
        vec![
            ServeEngine::new(hilos(8), ServeConfig::new(8)).unwrap(),
            ServeEngine::new(hilos(6), ServeConfig::new(8)).unwrap(),
            ServeEngine::new(hilos(4), ServeConfig::new(8)).unwrap(),
            ServeEngine::new(hilos(4), ServeConfig::new(8)).unwrap(),
        ]
    };

    // The reserved baseline: the same fleet, every slot provisioned for
    // the whole run, same cost-normalized router.
    let mut fixed = ClusterEngine::new(elastic_slots(), Box::new(CostNormalizedPressure));
    let fixed_report = fixed.run_trace(&bursty).unwrap();
    assert_eq!(fixed_report.completed(), bursty.len(), "fixed fleet must complete the trace");
    let slot_costs: Vec<(f64, f64)> = fixed
        .deployments()
        .iter()
        .map(|e| {
            let spec = e.system().spec();
            (spec.total_price_usd(), hilos_metrics::provisioned_power_w(spec))
        })
        .collect();
    let reserved_bill = FleetBill::reserved(&slot_costs, fixed_report.elapsed_s());
    let fixed_cost_per_1k = reserved_bill.cost_per_1k_tokens(fixed_report.goodput_tokens());
    eprintln!(
        "fixed fleet: ${:.4}/1k goodput tokens ({} goodput tokens, makespan {:.0}s, \
         bill ${:.2})",
        fixed_cost_per_1k,
        fixed_report.goodput_tokens(),
        fixed_report.elapsed_s(),
        reserved_bill.cost_usd(),
    );

    let mut hybrid_cost_per_1k = f64::INFINITY;
    let elastic_rows: Vec<String> = [
        Box::new(TargetPressureScaler::default()) as Box<dyn AutoscalePolicy>,
        Box::new(HybridHistogramKeepAlive::new(64)),
    ]
    .into_iter()
    .map(|autoscale| {
        let name = autoscale.name();
        let mut elastic = ElasticClusterEngine::new(
            elastic_slots(),
            Box::new(CostNormalizedPressure),
            autoscale,
            ElasticConfig::new(1),
        );
        let start = Instant::now();
        let r = elastic.run_trace(&bursty).unwrap();
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(r.cluster.completed(), bursty.len(), "{name}: elasticity must lose nothing");
        assert_eq!(r.lost(), 0, "{name}: zero dropped requests");
        let cost_per_1k = r.cost_per_1k_goodput_tokens();
        if name == "hybrid-histogram-keep-alive" {
            hybrid_cost_per_1k = cost_per_1k;
        }
        eprintln!(
            "elastic {name}: ${:.4}/1k goodput tokens, {} scale-ups, {} drains, {} retires, \
             {} migrated, peak {} active, {:.0}s billed (+{:.0}s cold start) ({wall:.3}s wall)",
            cost_per_1k,
            r.scale_ups,
            r.drains,
            r.retires,
            r.drained_requests,
            r.peak_active,
            r.fleet_bill().billed_seconds(),
            r.cold_start_s_total,
        );
        format!(
            "{{\"autoscale\": \"{name}\", \"cost_per_1k_goodput_usd\": {:.6}, \
             \"fleet_cost_usd\": {:.6}, \"billed_seconds\": {:.2}, \
             \"cold_start_seconds\": {:.2}, \"scale_ups\": {}, \"drains\": {}, \
             \"retires\": {}, \"migrated_requests\": {}, \"peak_active\": {}, \
             \"completed\": {}, \"lost\": {}, \"slo_hit_rate\": {:.4}}}",
            cost_per_1k,
            r.fleet_bill().cost_usd(),
            r.fleet_bill().billed_seconds(),
            r.cold_start_s_total,
            r.scale_ups,
            r.drains,
            r.retires,
            r.drained_requests,
            r.peak_active,
            r.cluster.completed(),
            r.lost(),
            r.cluster.slo_hit_rate(),
        )
    })
    .collect();
    let fixed_vs_elastic = fixed_cost_per_1k / hybrid_cost_per_1k;
    eprintln!("reserved vs keep-alive elastic $/1k-goodput: {fixed_vs_elastic:.3}x");

    let json = format!(
        "{{\n  \"bench\": \"cluster\",\n  \"note\": \"one contended seeded trace balanced \
         across 3 heterogeneous deployments (8 healthy / 6 with a half-degraded device / 4 \
         with a quarter-degraded device) under three routing policies, plus cross-deployment \
         re-dispatch of preempted requests on a 2-deployment priority-preempt cluster\",\n  \
         \"cluster\": {{\"deployments\": 3, \"requests\": {REQUESTS}, \
         \"mean_interarrival_steps\": {ARRIVAL_GAP}, \"seed\": {SEED}}},\n  \
         \"routing\": [\n    {}\n  ],\n  \
         \"ledger_pressure_vs_round_robin_goodput\": {margin_vs_rr:.4},\n  \
         \"redispatch\": {{\"requests\": {}, \"preemptions\": {}, \"cross_deployment\": {}, \
         \"completed\": {}}},\n  \
         \"elastic\": {{\n    \
         \"trace\": {{\"requests\": {BURSTY_REQUESTS}, \"bursts\": {BURSTS}, \
         \"calm_gap_steps\": {CALM_GAP}, \"seed\": {SEED}}},\n    \
         \"fleet\": {{\"slots\": 4, \"initial_active\": 1, \"routing\": \
         \"cost-normalized-pressure\"}},\n    \
         \"policies\": [\n      {}\n    ],\n    \
         \"fixed\": {{\"cost_per_1k_goodput_usd\": {fixed_cost_per_1k:.6}, \
         \"fleet_cost_usd\": {:.6}, \"makespan_seconds\": {:.2}, \"completed\": {}}},\n    \
         \"fixed_vs_elastic_cost_per_1k\": {fixed_vs_elastic:.4}\n  }}\n}}\n",
        policy_rows.join(",\n    "),
        balanced.len(),
        rd.preemptions(),
        rd.redispatches,
        rd.completed(),
        elastic_rows.join(",\n      "),
        reserved_bill.cost_usd(),
        fixed_report.elapsed_s(),
        fixed_report.completed(),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_cluster.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
