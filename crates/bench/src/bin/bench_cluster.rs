//! `bench_cluster` — the multi-deployment routing smoke bench.
//!
//! Two measurements, recorded into `BENCH_cluster.json` (current
//! directory, or the path given as the first argument):
//!
//! 1. **Routing comparison** — the seeded contended trace (384 Azure-mix
//!    requests, one arrival every ~10 steps) balanced across three
//!    heterogeneous deployments (8 healthy devices / 6 with one device
//!    at half bandwidth / 4 with one device at quarter bandwidth) under
//!    round-robin, join-shortest-queue and ledger-pressure routing. The
//!    simulation is bit-deterministic, so CI gates the exact ordering:
//!    `ledger-pressure ≥ join-shortest-queue ≥ round-robin` on SLO
//!    goodput, and records the ledger-pressure vs round-robin margin.
//! 2. **Cross-deployment re-dispatch** — a 2-deployment priority-preempt
//!    cluster under round-robin routing on a balanced-load trace:
//!    preempted victims must actually migrate between deployments and
//!    every request must still complete exactly once.
//!
//! ```text
//! Usage: bench_cluster [output.json]
//! ```

use hilos_core::cluster::{
    ClusterEngine, JoinShortestQueue, LedgerPressure, RoundRobin, RoutingPolicy,
};
use hilos_core::{HilosConfig, HilosSystem, PriorityPreempt, ServeConfig, ServeEngine};
use hilos_llm::{presets, TraceConfig};
use hilos_platform::SystemSpec;
use std::time::Instant;

/// Requests in the routing-comparison trace.
const REQUESTS: usize = 384;
/// Mean arrival gap (serving steps) of the contended trace.
const ARRIVAL_GAP: u64 = 10;
/// Trace seed (shared with `tests/cluster.rs`).
const SEED: u64 = 42;

fn hilos(n: usize) -> HilosSystem {
    HilosSystem::new(&SystemSpec::a100_smartssd(n), &presets::opt_30b(), &HilosConfig::new(n))
        .unwrap()
        .with_sim_layers(1)
}

/// The seeded heterogeneous cluster: distinct device counts *and*
/// degradation profiles, so capacity-blind routing leaves goodput on the
/// table.
fn heterogeneous_deployments() -> Vec<ServeEngine> {
    vec![
        ServeEngine::new(hilos(8), ServeConfig::new(8)).unwrap(),
        ServeEngine::new(hilos(6).with_degraded_device(1, 0.5), ServeConfig::new(8)).unwrap(),
        ServeEngine::new(hilos(4).with_degraded_device(0, 0.25), ServeConfig::new(8)).unwrap(),
    ]
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_cluster.json".to_string());

    // -- 1: three-way routing-policy comparison --
    let trace = TraceConfig {
        mean_interarrival_steps: ARRIVAL_GAP,
        ..TraceConfig::azure_mix(REQUESTS, SEED)
    }
    .generate()
    .expect("valid trace config");
    let mut goodputs = Vec::new();
    let policy_rows: Vec<String> = [
        Box::new(RoundRobin::new()) as Box<dyn RoutingPolicy>,
        Box::new(JoinShortestQueue),
        Box::new(LedgerPressure::new()),
    ]
    .into_iter()
    .map(|routing| {
        let name = routing.name();
        let mut cluster = ClusterEngine::new(heterogeneous_deployments(), routing);
        let start = Instant::now();
        let r = cluster.run_trace(&trace).unwrap();
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(r.completed(), trace.len(), "{name}: trace must complete");
        goodputs.push(r.slo_token_goodput());
        eprintln!(
            "routing {name}: slo_goodput {:.2} tok/s, hit {:.1}%, makespan {:.0}s, \
             dispatched {:?}, {} redispatches ({wall:.3}s wall)",
            r.slo_token_goodput(),
            r.slo_hit_rate() * 100.0,
            r.elapsed_s(),
            r.dispatched,
            r.redispatches,
        );
        let dispatched = r.dispatched.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
        format!(
            "{{\"routing\": \"{name}\", \"slo_goodput_tokens_per_second\": {:.4}, \
             \"slo_hit_rate\": {:.4}, \"tokens_per_second\": {:.4}, \
             \"ttft_p95_seconds\": {:.4}, \"makespan_seconds\": {:.4}, \
             \"dispatched\": [{dispatched}], \"dispatch_imbalance\": {:.4}, \
             \"redispatches\": {}}}",
            r.slo_token_goodput(),
            r.slo_hit_rate(),
            r.tokens_per_second(),
            r.ttft_stats().p95,
            r.elapsed_s(),
            r.dispatch_imbalance(),
            r.redispatches,
        )
    })
    .collect();
    let margin_vs_rr = goodputs[2] / goodputs[0];
    eprintln!("ledger-pressure vs round-robin margin: {margin_vs_rr:.3}x");

    // -- 2: cross-deployment re-dispatch of preempted requests --
    let balanced = TraceConfig { mean_interarrival_steps: 30, ..TraceConfig::azure_mix(128, 33) }
        .generate()
        .expect("valid trace config");
    let preempting = |sys: HilosSystem| {
        ServeEngine::with_policy(sys, ServeConfig::new(3), Box::new(PriorityPreempt::new()))
            .unwrap()
    };
    let mut cluster = ClusterEngine::new(
        vec![preempting(hilos(4)), preempting(hilos(4).with_degraded_device(0, 0.5))],
        Box::new(RoundRobin::new()),
    );
    let rd = cluster.run_trace(&balanced).unwrap();
    assert_eq!(rd.completed(), balanced.len(), "re-dispatch must lose nothing");
    eprintln!(
        "re-dispatch: {} preemptions, {} crossed deployments, {} completed",
        rd.preemptions(),
        rd.redispatches,
        rd.completed(),
    );

    let json = format!(
        "{{\n  \"bench\": \"cluster\",\n  \"note\": \"one contended seeded trace balanced \
         across 3 heterogeneous deployments (8 healthy / 6 with a half-degraded device / 4 \
         with a quarter-degraded device) under three routing policies, plus cross-deployment \
         re-dispatch of preempted requests on a 2-deployment priority-preempt cluster\",\n  \
         \"cluster\": {{\"deployments\": 3, \"requests\": {REQUESTS}, \
         \"mean_interarrival_steps\": {ARRIVAL_GAP}, \"seed\": {SEED}}},\n  \
         \"routing\": [\n    {}\n  ],\n  \
         \"ledger_pressure_vs_round_robin_goodput\": {margin_vs_rr:.4},\n  \
         \"redispatch\": {{\"requests\": {}, \"preemptions\": {}, \"cross_deployment\": {}, \
         \"completed\": {}}}\n}}\n",
        policy_rows.join(",\n    "),
        balanced.len(),
        rd.preemptions(),
        rd.redispatches,
        rd.completed(),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_cluster.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
