//! `bench_cluster` — the multi-deployment routing smoke bench.
//!
//! Two measurements, recorded into `BENCH_cluster.json` (current
//! directory, or the path given as the first argument):
//!
//! 1. **Routing comparison** — the seeded contended trace (384 Azure-mix
//!    requests, one arrival every ~10 steps) balanced across three
//!    heterogeneous deployments (8 healthy devices / 6 with one device
//!    at half bandwidth / 4 with one device at quarter bandwidth) under
//!    round-robin, join-shortest-queue and ledger-pressure routing. The
//!    simulation is bit-deterministic, so CI gates the exact ordering:
//!    `ledger-pressure ≥ join-shortest-queue ≥ round-robin` on SLO
//!    goodput, and records the ledger-pressure vs round-robin margin.
//! 2. **Cross-deployment re-dispatch** — a 2-deployment priority-preempt
//!    cluster under round-robin routing on a balanced-load trace:
//!    preempted victims must actually migrate between deployments and
//!    every request must still complete exactly once.
//! 3. **Elastic vs reserved fleet** — the seeded flash-crowd trace (384
//!    requests in 6 bursts separated by long calm gaps) served by an
//!    elastic 3-slot fleet under cost-normalized routing, autoscaled by
//!    the reactive target-pressure scaler and by the hybrid-histogram
//!    keep-alive predictor, against the same fleet statically reserved
//!    at peak for the whole run. CI gates: the keep-alive fleet beats
//!    the reserved one on $/1k-goodput-tokens by ≥1.3×, with zero lost
//!    requests across every scale-up, drain and retire.
//! 4. **Fleet-scale parallel stepping** — a 32-deployment fleet on a
//!    100k-request seeded trace, run serially and through the 4-thread
//!    lockstep fan-out pool. The two [`ClusterReport`]s are asserted
//!    bit-identical (the determinism contract), the serial-vs-parallel
//!    wall clock and speedup are recorded next to the machine's logical
//!    core count, and the `fleet-smoke` CI job gates speedup ≥2× on
//!    runners with ≥4 cores.
//!
//! ```text
//! Usage: bench_cluster [output.json]
//! ```

use hilos_core::cluster::{
    AutoscalePolicy, ClusterConfig, ClusterEngine, CostNormalizedPressure, ElasticClusterEngine,
    ElasticConfig, HybridHistogramKeepAlive, JoinShortestQueue, LedgerPressure, RoundRobin,
    RoutingPolicy, TargetPressureScaler,
};
use hilos_core::{HilosConfig, HilosSystem, PriorityPreempt, ServeConfig, ServeEngine};
use hilos_llm::{presets, TraceConfig};
use hilos_metrics::FleetBill;
use hilos_platform::SystemSpec;
use std::time::Instant;

/// Requests in the routing-comparison trace.
const REQUESTS: usize = 384;
/// Mean arrival gap (serving steps) of the contended trace.
const ARRIVAL_GAP: u64 = 10;
/// Trace seed (shared with `tests/cluster.rs`).
const SEED: u64 = 42;

fn hilos(n: usize) -> HilosSystem {
    HilosSystem::new(&SystemSpec::a100_smartssd(n), &presets::opt_30b(), &HilosConfig::new(n))
        .unwrap()
        .with_sim_layers(1)
}

/// The seeded heterogeneous cluster: distinct device counts *and*
/// degradation profiles, so capacity-blind routing leaves goodput on the
/// table.
fn heterogeneous_deployments() -> Vec<ServeEngine> {
    vec![
        ServeEngine::new(hilos(8), ServeConfig::new(8)).unwrap(),
        ServeEngine::new(hilos(6).with_degraded_device(1, 0.5), ServeConfig::new(8)).unwrap(),
        ServeEngine::new(hilos(4).with_degraded_device(0, 0.25), ServeConfig::new(8)).unwrap(),
    ]
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_cluster.json".to_string());

    // -- 1: three-way routing-policy comparison --
    let trace = TraceConfig {
        mean_interarrival_steps: ARRIVAL_GAP,
        ..TraceConfig::azure_mix(REQUESTS, SEED)
    }
    .generate()
    .expect("valid trace config");
    let mut goodputs = Vec::new();
    let policy_rows: Vec<String> = [
        Box::new(RoundRobin::new()) as Box<dyn RoutingPolicy>,
        Box::new(JoinShortestQueue),
        Box::new(LedgerPressure::new()),
    ]
    .into_iter()
    .map(|routing| {
        let name = routing.name();
        let mut cluster = ClusterEngine::new(heterogeneous_deployments(), routing);
        let start = Instant::now();
        let r = cluster.run_trace(&trace).unwrap();
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(r.completed(), trace.len(), "{name}: trace must complete");
        goodputs.push(r.slo_token_goodput());
        eprintln!(
            "routing {name}: slo_goodput {:.2} tok/s, hit {:.1}%, makespan {:.0}s, \
             dispatched {:?}, {} redispatches ({wall:.3}s wall)",
            r.slo_token_goodput(),
            r.slo_hit_rate() * 100.0,
            r.elapsed_s(),
            r.dispatched,
            r.redispatches,
        );
        let dispatched = r.dispatched.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
        format!(
            "{{\"routing\": \"{name}\", \"slo_goodput_tokens_per_second\": {:.4}, \
             \"slo_hit_rate\": {:.4}, \"tokens_per_second\": {:.4}, \
             \"ttft_p95_seconds\": {:.4}, \"makespan_seconds\": {:.4}, \
             \"dispatched\": [{dispatched}], \"dispatch_imbalance\": {:.4}, \
             \"redispatches\": {}}}",
            r.slo_token_goodput(),
            r.slo_hit_rate(),
            r.tokens_per_second(),
            r.ttft_stats().p95,
            r.elapsed_s(),
            r.dispatch_imbalance(),
            r.redispatches,
        )
    })
    .collect();
    let margin_vs_rr = goodputs[2] / goodputs[0];
    eprintln!("ledger-pressure vs round-robin margin: {margin_vs_rr:.3}x");

    // -- 2: cross-deployment re-dispatch of preempted requests --
    let balanced = TraceConfig { mean_interarrival_steps: 30, ..TraceConfig::azure_mix(128, 33) }
        .generate()
        .expect("valid trace config");
    let preempting = |sys: HilosSystem| {
        ServeEngine::with_policy(sys, ServeConfig::new(3), Box::new(PriorityPreempt::new()))
            .unwrap()
    };
    let mut cluster = ClusterEngine::new(
        vec![preempting(hilos(4)), preempting(hilos(4).with_degraded_device(0, 0.5))],
        Box::new(RoundRobin::new()),
    );
    let rd = cluster.run_trace(&balanced).unwrap();
    assert_eq!(rd.completed(), balanced.len(), "re-dispatch must lose nothing");
    eprintln!(
        "re-dispatch: {} preemptions, {} crossed deployments, {} completed",
        rd.preemptions(),
        rd.redispatches,
        rd.completed(),
    );

    // -- 3: elastic vs reserved fleet on the bursty trace --
    const BURSTY_REQUESTS: usize = 512;
    const BURSTS: u32 = 8;
    const CALM_GAP: u64 = 2400;
    let bursty =
        TraceConfig::flash_crowd_mix(BURSTY_REQUESTS, SEED, BURSTS, CALM_GAP).generate().unwrap();
    let elastic_slots = || {
        vec![
            ServeEngine::new(hilos(8), ServeConfig::new(8)).unwrap(),
            ServeEngine::new(hilos(6), ServeConfig::new(8)).unwrap(),
            ServeEngine::new(hilos(4), ServeConfig::new(8)).unwrap(),
            ServeEngine::new(hilos(4), ServeConfig::new(8)).unwrap(),
        ]
    };

    // The reserved baseline: the same fleet, every slot provisioned for
    // the whole run, same cost-normalized router.
    let mut fixed = ClusterEngine::new(elastic_slots(), Box::new(CostNormalizedPressure));
    let fixed_report = fixed.run_trace(&bursty).unwrap();
    assert_eq!(fixed_report.completed(), bursty.len(), "fixed fleet must complete the trace");
    let slot_costs: Vec<(f64, f64)> = fixed
        .deployments()
        .iter()
        .map(|e| {
            let spec = e.system().spec();
            (spec.total_price_usd(), hilos_metrics::provisioned_power_w(spec))
        })
        .collect();
    let reserved_bill = FleetBill::reserved(&slot_costs, fixed_report.elapsed_s());
    let fixed_cost_per_1k = reserved_bill.cost_per_1k_tokens(fixed_report.goodput_tokens());
    eprintln!(
        "fixed fleet: ${:.4}/1k goodput tokens ({} goodput tokens, makespan {:.0}s, \
         bill ${:.2})",
        fixed_cost_per_1k,
        fixed_report.goodput_tokens(),
        fixed_report.elapsed_s(),
        reserved_bill.cost_usd(),
    );

    let mut hybrid_cost_per_1k = f64::INFINITY;
    let elastic_rows: Vec<String> = [
        Box::new(TargetPressureScaler::default()) as Box<dyn AutoscalePolicy>,
        Box::new(HybridHistogramKeepAlive::new(64)),
    ]
    .into_iter()
    .map(|autoscale| {
        let name = autoscale.name();
        let mut elastic = ElasticClusterEngine::new(
            elastic_slots(),
            Box::new(CostNormalizedPressure),
            autoscale,
            ElasticConfig::new(1),
        );
        let start = Instant::now();
        let r = elastic.run_trace(&bursty).unwrap();
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(r.cluster.completed(), bursty.len(), "{name}: elasticity must lose nothing");
        assert_eq!(r.lost(), 0, "{name}: zero dropped requests");
        let cost_per_1k = r.cost_per_1k_goodput_tokens();
        if name == "hybrid-histogram-keep-alive" {
            hybrid_cost_per_1k = cost_per_1k;
        }
        eprintln!(
            "elastic {name}: ${:.4}/1k goodput tokens, {} scale-ups, {} drains, {} retires, \
             {} migrated, peak {} active, {:.0}s billed (+{:.0}s cold start) ({wall:.3}s wall)",
            cost_per_1k,
            r.scale_ups,
            r.drains,
            r.retires,
            r.drained_requests,
            r.peak_active,
            r.fleet_bill().billed_seconds(),
            r.cold_start_s_total,
        );
        format!(
            "{{\"autoscale\": \"{name}\", \"cost_per_1k_goodput_usd\": {:.6}, \
             \"fleet_cost_usd\": {:.6}, \"billed_seconds\": {:.2}, \
             \"cold_start_seconds\": {:.2}, \"scale_ups\": {}, \"drains\": {}, \
             \"retires\": {}, \"migrated_requests\": {}, \"peak_active\": {}, \
             \"completed\": {}, \"lost\": {}, \"slo_hit_rate\": {:.4}}}",
            cost_per_1k,
            r.fleet_bill().cost_usd(),
            r.fleet_bill().billed_seconds(),
            r.cold_start_s_total,
            r.scale_ups,
            r.drains,
            r.retires,
            r.drained_requests,
            r.peak_active,
            r.cluster.completed(),
            r.lost(),
            r.cluster.slo_hit_rate(),
        )
    })
    .collect();
    let fixed_vs_elastic = fixed_cost_per_1k / hybrid_cost_per_1k;
    eprintln!("reserved vs keep-alive elastic $/1k-goodput: {fixed_vs_elastic:.3}x");

    // -- 4: fleet-scale parallel lockstep stepping --
    // 32 identical deployments on a 100k-request seeded trace: the same
    // run serially and through the 4-thread fan-out pool. The simulation
    // is bit-deterministic at any thread count, so the two ClusterReports
    // are asserted equal outright; the speedup is recorded next to the
    // machine's logical core count (a 1-core runner cannot show one).
    const FLEET_DEPLOYMENTS: usize = 32;
    const FLEET_REQUESTS: usize = 100_000;
    const FLEET_THREADS: usize = 4;
    // Offline inference shape: the whole campaign is enqueued up front
    // (mean interarrival 0), every deployment runs a full batch every
    // step, and the lockstep rounds are few and heavy — the regime the
    // fan-out pool is built for.
    let fleet_trace =
        TraceConfig { mean_interarrival_steps: 0, ..TraceConfig::azure_mix(FLEET_REQUESTS, SEED) }
            .generate()
            .expect("valid trace config");
    let run_fleet = |threads: usize, shared_warm_start: bool| {
        let slots: Vec<ServeEngine> = (0..FLEET_DEPLOYMENTS)
            .map(|_| ServeEngine::new(hilos(4), ServeConfig::new(32)).unwrap())
            .collect();
        let mut cluster = ClusterEngine::with_config(
            slots,
            Box::new(RoundRobin::new()),
            ClusterConfig::new()
                .with_cluster_threads(threads)
                .with_shared_warm_start(shared_warm_start),
        );
        let start = Instant::now();
        let r = cluster.run_trace(&fleet_trace).unwrap();
        (r, start.elapsed().as_secs_f64())
    };
    // Thread scaling on per-deployment (cold) caches: every slot does its
    // own flow-model compute, the work the pool actually spreads.
    let (fleet_serial, serial_s) = run_fleet(1, false);
    let (fleet_parallel, parallel_s) = run_fleet(FLEET_THREADS, false);
    let reports_identical = fleet_serial == fleet_parallel;
    assert!(reports_identical, "thread count must not change any report field");
    assert_eq!(fleet_serial.completed(), FLEET_REQUESTS, "fleet trace must complete");
    let fleet_speedup = serial_s / parallel_s;
    // The second perf layer: 32 identical deployments sharing one
    // copy-on-write step-cache memo table. Same outcomes, one deployment
    // computes each step value, the other 31 reuse it.
    let (fleet_shared, shared_s) = run_fleet(1, true);
    for (d, (a, b)) in fleet_serial.deployments.iter().zip(&fleet_shared.deployments).enumerate() {
        assert_eq!(a.outcomes, b.outcomes, "warm-start sharing changed deployment {d} outcomes");
    }
    let warm_start_speedup = serial_s / shared_s;
    let logical_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!(
        "fleet: {FLEET_DEPLOYMENTS} deployments x {FLEET_REQUESTS} requests, serial {serial_s:.2}s \
         vs {FLEET_THREADS}-thread {parallel_s:.2}s = {fleet_speedup:.2}x \
         ({logical_cores} logical cores, reports identical: {reports_identical}); \
         shared warm-start serial {shared_s:.2}s = {warm_start_speedup:.2}x",
    );

    let json = format!(
        "{{\n  \"bench\": \"cluster\",\n  \"note\": \"one contended seeded trace balanced \
         across 3 heterogeneous deployments (8 healthy / 6 with a half-degraded device / 4 \
         with a quarter-degraded device) under three routing policies, plus cross-deployment \
         re-dispatch of preempted requests on a 2-deployment priority-preempt cluster\",\n  \
         \"cluster\": {{\"deployments\": 3, \"requests\": {REQUESTS}, \
         \"mean_interarrival_steps\": {ARRIVAL_GAP}, \"seed\": {SEED}}},\n  \
         \"routing\": [\n    {}\n  ],\n  \
         \"ledger_pressure_vs_round_robin_goodput\": {margin_vs_rr:.4},\n  \
         \"redispatch\": {{\"requests\": {}, \"preemptions\": {}, \"cross_deployment\": {}, \
         \"completed\": {}}},\n  \
         \"elastic\": {{\n    \
         \"trace\": {{\"requests\": {BURSTY_REQUESTS}, \"bursts\": {BURSTS}, \
         \"calm_gap_steps\": {CALM_GAP}, \"seed\": {SEED}}},\n    \
         \"fleet\": {{\"slots\": 4, \"initial_active\": 1, \"routing\": \
         \"cost-normalized-pressure\"}},\n    \
         \"policies\": [\n      {}\n    ],\n    \
         \"fixed\": {{\"cost_per_1k_goodput_usd\": {fixed_cost_per_1k:.6}, \
         \"fleet_cost_usd\": {:.6}, \"makespan_seconds\": {:.2}, \"completed\": {}}},\n    \
         \"fixed_vs_elastic_cost_per_1k\": {fixed_vs_elastic:.4}\n  }},\n  \
         \"fleet\": {{\"deployments\": {FLEET_DEPLOYMENTS}, \"requests\": {FLEET_REQUESTS}, \
         \"seed\": {SEED}, \"logical_cores\": {logical_cores}, \
         \"serial_seconds\": {serial_s:.4}, \"threads\": {FLEET_THREADS}, \
         \"parallel_seconds\": {parallel_s:.4}, \"speedup\": {fleet_speedup:.4}, \
         \"warm_start_serial_seconds\": {shared_s:.4}, \
         \"warm_start_speedup\": {warm_start_speedup:.4}, \
         \"reports_identical\": {reports_identical}, \"completed\": {}}}\n}}\n",
        policy_rows.join(",\n    "),
        balanced.len(),
        rd.preemptions(),
        rd.redispatches,
        rd.completed(),
        elastic_rows.join(",\n      "),
        reserved_bill.cost_usd(),
        fixed_report.elapsed_s(),
        fixed_report.completed(),
        fleet_serial.completed(),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_cluster.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
