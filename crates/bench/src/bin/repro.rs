//! `repro` — regenerates every table and figure of the paper's
//! evaluation.
//!
//! ```text
//! Usage: repro <experiment|all> [...]
//! Experiments: fig2 fig4 table3 estimator fig10 fig11 fig12a fig12b
//!              fig13 fig14 fig15 fig16a fig16b fig17a fig17b fig18ab fig18c
//! ```

use hilos_bench::experiments;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: repro <experiment...|all>");
    eprintln!("experiments: {} fig18ab ablations straggler schedule", experiments::ALL.join(" "));
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        match experiments::run(id) {
            Some(output) => {
                println!("{}", "=".repeat(72));
                println!("{output}");
            }
            None => {
                eprintln!("unknown experiment: {id}");
                return usage();
            }
        }
    }
    ExitCode::SUCCESS
}
