//! `bench_kernels` — the CI perf-trajectory smoke bench.
//!
//! Times the pre-PR baseline kernel against the optimized and fused
//! kernels at context lengths 2K / 32K / 128K and writes
//! `BENCH_kernels.json` (current directory, or the path given as the
//! first argument) so successive PRs accumulate a comparable throughput
//! record. Runs in seconds, not minutes: iteration counts shrink as the
//! context grows. With `--features simd` the tolerance-validated
//! eight-lane `QKᵀ` kernel is timed as a fourth row.
//!
//! ```text
//! Usage: bench_kernels [output.json]
//! ```

use hilos_accel::{
    attention_kernel_baseline, attention_kernel_fused_with_scratch, attention_kernel_with_scratch,
    AttentionInputs, KernelScratch, MatrixF32,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Head dimension of every measurement (the paper's common d=64).
const HEAD_DIM: usize = 64;
/// GQA group size (d_group=4, the Table 3 mid configuration).
const GROUP: usize = 4;
/// Measured context lengths.
const CONTEXTS: [usize; 3] = [2 * 1024, 32 * 1024, 128 * 1024];

fn toy(g: usize, s: usize, d: usize) -> (MatrixF32, MatrixF32, MatrixF32) {
    let mut state = 987654321u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0
    };
    (
        MatrixF32::from_fn(g, d, |_, _| next()),
        MatrixF32::from_fn(s, d, |_, _| next()),
        MatrixF32::from_fn(s, d, |_, _| next()),
    )
}

/// Times `f` over `reps` batches of `iters` calls and returns the best
/// batch as (seconds-per-call, tokens-per-second), where a "token" is
/// one context position swept by the kernel call. Best-of-batches keeps
/// the record stable under background load on shared CI runners.
fn time_kernel(mut f: impl FnMut(), iters: usize, reps: usize, context: usize) -> (f64, f64) {
    // One warmup call (fills scratch arenas / decode LUT / caches).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    (best, context as f64 / best)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let mut rows = String::new();
    let mut speedups = String::new();

    for (ci, &s) in CONTEXTS.iter().enumerate() {
        let (q, k, v) = toy(GROUP, s, HEAD_DIM);
        let (qh, kh, vh) = (q.to_f16(), k.to_f16(), v.to_f16());
        let inputs = AttentionInputs {
            queries: &qh,
            keys: &kh,
            values: &vh,
            valid: None,
            scale: 0.125,
            host_tail: None,
        };
        // Keep total runtime bounded: the baseline at 128K is slow.
        let (iters, reps) = match s {
            0..=4096 => (20, 5),
            4097..=65536 => (3, 3),
            _ => (1, 3),
        };

        let (base_s, base_tps) =
            time_kernel(|| drop(attention_kernel_baseline(&inputs).unwrap()), iters, reps, s);
        let mut scratch = KernelScratch::new();
        let (opt_s, opt_tps) = time_kernel(
            || drop(attention_kernel_with_scratch(&inputs, &mut scratch).unwrap()),
            iters,
            reps,
            s,
        );
        let (fused_s, fused_tps) = time_kernel(
            || drop(attention_kernel_fused_with_scratch(&inputs, &mut scratch).unwrap()),
            iters,
            reps,
            s,
        );

        let speedup = base_s / opt_s;
        let fused_speedup = base_s / fused_s;
        eprintln!(
            "s={s:>6}: baseline {base_s:.6}s/call, optimized {opt_s:.6}s/call \
             ({speedup:.2}x), fused {fused_s:.6}s/call ({fused_speedup:.2}x)"
        );

        #[cfg_attr(not(feature = "simd"), allow(unused_mut))]
        let mut kernels = vec![
            ("baseline", base_s, base_tps),
            ("optimized", opt_s, opt_tps),
            ("fused", fused_s, fused_tps),
        ];
        #[cfg_attr(not(feature = "simd"), allow(unused_mut))]
        let mut simd_speedup = String::new();
        #[cfg(feature = "simd")]
        {
            let (simd_s, simd_tps) = time_kernel(
                || {
                    drop(
                        hilos_accel::attention_kernel_simd_with_scratch(&inputs, &mut scratch)
                            .unwrap(),
                    )
                },
                iters,
                reps,
                s,
            );
            let x = base_s / simd_s;
            eprintln!("s={s:>6}: simd {simd_s:.6}s/call ({x:.2}x)");
            kernels.push(("simd", simd_s, simd_tps));
            let _ = write!(simd_speedup, ", \"simd_vs_baseline\": {x:.3}");
        }
        for (kernel, secs, tps) in kernels {
            let _ = write!(
                rows,
                "\n    {{\"context\": {s}, \"head_dim\": {HEAD_DIM}, \"group\": {GROUP}, \
                 \"kernel\": \"{kernel}\", \"seconds_per_call\": {secs:.9}, \
                 \"context_tokens_per_second\": {tps:.1}}},"
            );
        }
        let sep = if ci + 1 < CONTEXTS.len() { "," } else { "" };
        let _ = write!(
            speedups,
            "\n    {{\"context\": {s}, \"optimized_vs_baseline\": {speedup:.3}, \
             \"fused_vs_baseline\": {fused_speedup:.3}{simd_speedup}}}{sep}"
        );
    }
    rows.pop(); // trailing comma

    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"note\": \"throughput of the pre-PR baseline vs the \
         optimized (LUT + arena + shared GQA decode) and fused streaming attention kernels; \
         g={GROUP}, d={HEAD_DIM}\",\n  \"results\": [{rows}\n  ],\n  \"speedup\": [{speedups}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_kernels.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
