//! `bench_serving` — the request-level serving smoke bench.
//!
//! Nine measurements, recorded into `BENCH_serving.json` (current
//! directory, or the path given as the first argument):
//!
//! 1. **Engine indexing** — a serving-shaped event loop on the raw
//!    [`FlowEngine`] at 256 concurrent jobs (shared uplink + per-device
//!    links, churn replacing every completed job, partial-advance polls
//!    between completions as the task executor's delay wakeups produce),
//!    timed twice: once answering `next_completion_time` from the
//!    heap index, once from the retained linear reference scan. CI fails
//!    if the heap is slower than the scan.
//! 2. **Fair-share crossover** — steady-state churn on a single shared
//!    link at 256 / 4k / 64k / 1M concurrent jobs, comparing the
//!    virtual-time engine (`FlowEngineImpl::VirtualTime`, O(log n) per
//!    composition change) against the progressive-filling oracle
//!    answered through the linear reference scan (O(n) rescan per
//!    event). The per-event speedup record pins where the fast path
//!    overtakes the scan; the `flow-smoke` CI job gates >= 5x at 64k
//!    jobs and above.
//! 3. **Trace throughput** — a 1M-request seeded heterogeneous trace
//!    served by the continuous-batching layer under the virtual-time
//!    engine, recording wall-clock requests/s and the step-cache hit
//!    behavior. The `flow-smoke` CI job holds the run to a 60 s
//!    wall-clock budget.
//! 4. **Policy comparison** — the contended 256-request Azure-mix trace
//!    served under FIFO, deadline-EDF and priority-preemptive
//!    scheduling. The simulation is bit-deterministic, so CI gates the
//!    exact claims: EDF beats FIFO on SLO goodput, priority preemption
//!    beats FIFO on high-class (Short) p95 TTFT.
//! 5. **Chunked prefill** — the long-prompt contended trace served with
//!    inline lump prefill vs token-budgeted chunks, plus a
//!    `ChunkMode::Off` golden-equivalence smoke (the FNV constant
//!    `tests/serving.rs` pins). CI gates the chunking claim exactly:
//!    the decode-gap tail (per-emission ITL p95/p99/max) improves.
//! 6. **Overload shedding** — plain deadline-EDF vs EDF with shedding on
//!    the overloaded seeded trace; CI gates the SLO-goodput lift.
//! 7. **Prefix KV-cache reuse** — the seeded shared-prefix long-context
//!    trace (8192-token shared document prefix, 60% session follow-ups)
//!    served with the cache off and on. Hits skip their prefix's prefill
//!    chunks and pay the residency ladder's recall I/O instead; the
//!    `cache-smoke` CI job gates the claim exactly: TTFT p95 improves
//!    >= 2x while every request generates the same tokens.
//! 8. **Ledger admission aggregates** — `can_allocate` answered from the
//!    [`KvShardLedger`]'s O(1) cached aggregates vs the O(devices)
//!    reference scan on a 4096-device array; CI gates >= 2x.
//! 9. **Lifecycle tracing** — the shared-prefix trace re-run with the
//!    event ring on: the deterministic stream FNV (the `trace-smoke` CI
//!    job's pin), event conservation, the exact additive latency
//!    attribution, and a schema-checked Perfetto export. The 1M-request
//!    trace in (3) runs with tracing off and asserts its 60 s wall-clock
//!    budget inline — the `NullSink` fast path must stay free.
//!
//! ```text
//! Usage: bench_serving [output.json]
//! ```

use hilos_core::{
    ChunkMode, DeadlineEdf, Fifo, HilosConfig, HilosSystem, PrefixCacheConfig, PriorityPreempt,
    SchedulingPolicy, ServeConfig, ServeEngine,
};
use hilos_llm::{presets, RequestClass, SharedPrefixConfig, TraceConfig};
use hilos_platform::SystemSpec;
use hilos_sim::{FlowEngine, FlowEngineImpl, ResourceId, ResourceKind, ResourceSpec, SimTime};
use hilos_storage::{KvShardLedger, ShardSpec};
use std::hint::black_box;
use std::time::Instant;

/// Concurrent jobs sustained in the engine benchmark.
const CONCURRENT: usize = 256;
/// Total jobs pushed through the engine per run.
const TOTAL_JOBS: usize = 2048;
/// Device links fanned out behind the shared uplink.
const DEVICES: usize = 64;
/// Partial-advance polls between consecutive completions.
const POLLS: u32 = 4;
/// Timing repetitions (best-of, for noisy shared runners).
const REPS: usize = 5;

/// One serving-shaped engine run; `use_heap` selects the completion
/// index. Returns (events, final time) so both variants can be checked
/// for agreement.
fn engine_run(use_heap: bool) -> (u64, SimTime) {
    let mut eng = FlowEngine::new();
    let uplink = eng.add_resource(ResourceSpec::new("uplink", ResourceKind::Link, 64e9));
    let devs: Vec<_> = (0..DEVICES)
        .map(|i| eng.add_resource(ResourceSpec::new(format!("dev{i}"), ResourceKind::Link, 3.2e9)))
        .collect();
    let amount = |i: usize| (1 + (i * 7) % 13) as f64 * 1e8;
    let submit = |eng: &mut FlowEngine, i: usize| {
        let d = devs[i % DEVICES];
        if i.is_multiple_of(3) {
            eng.submit(&[uplink, d], amount(i), None).unwrap();
        } else {
            eng.submit(&[d], amount(i), None).unwrap();
        }
    };
    for i in 0..CONCURRENT {
        submit(&mut eng, i);
    }
    let mut next_job = CONCURRENT;
    let mut events = 0u64;
    while eng.active_jobs() > 0 {
        // Serving loops poll the engine between step boundaries (delay
        // wakeups fire without completing any flow): partial advances
        // that must not pay a full rescan.
        for p in 1..=POLLS {
            let t = if use_heap {
                eng.next_completion_time().unwrap()
            } else {
                eng.next_completion_time_scan().unwrap()
            };
            let now = eng.now();
            let gap = (t - now).as_picos();
            let mid = now + SimTime::from_picos(gap * p as u64 / (POLLS as u64 + 1));
            eng.advance_to(mid).unwrap();
        }
        let t = if use_heap {
            eng.next_completion_time().unwrap()
        } else {
            eng.next_completion_time_scan().unwrap()
        };
        let done = eng.advance_to(t).unwrap();
        events += 1;
        for _ in done {
            if next_job < TOTAL_JOBS {
                submit(&mut eng, next_job);
                next_job += 1;
            }
        }
    }
    (events, eng.now())
}

/// Crossover sweep: (steady-state concurrent jobs, timed churn events).
/// The event count shrinks with the population so every point stays
/// inside the CI budget — at 1M jobs a single scan event already costs
/// three full O(n) passes (recompute + scan + advance).
const CROSSOVER: [(usize, usize); 4] = [(256, 2048), (4096, 2048), (65_536, 256), (1_000_000, 32)];

/// Strictly increasing demands keep steady-state completions staggered
/// one per event (equal demands submitted together would finish together
/// and collapse the sweep into a handful of mass-completion events).
fn crossover_amount(i: usize) -> f64 {
    1e8 + i as f64 * 1e3
}

/// Drives `count` steady-state churn events: pop the next completion,
/// advance to it, and replace every finished job so the population holds
/// at `n`. The fast variant answers from the virtual-time engine's
/// completion heap; the reference variant pays the oracle's full-rescan
/// path on every event.
fn churn_events(
    eng: &mut FlowEngine,
    link: ResourceId,
    next_job: &mut usize,
    count: usize,
    fast: bool,
) {
    for _ in 0..count {
        let t = if fast {
            eng.next_completion_time().unwrap()
        } else {
            eng.next_completion_time_scan().unwrap()
        };
        let done = eng.advance_to(t).unwrap();
        for _ in done {
            eng.submit(&[link], crossover_amount(*next_job), None).unwrap();
            *next_job += 1;
        }
    }
}

/// Best-of-3 seconds per steady-state churn event at `n` concurrent
/// uniform single-link jobs under the selected engine.
fn crossover_seconds_per_event(n: usize, events: usize, fast: bool) -> f64 {
    let sel = if fast { FlowEngineImpl::VirtualTime } else { FlowEngineImpl::ProgressiveFilling };
    let mut eng = FlowEngine::with_impl(sel);
    let link = eng.add_resource(ResourceSpec::new("link", ResourceKind::Link, 64e9));
    for i in 0..n {
        eng.submit(&[link], crossover_amount(i), None).unwrap();
    }
    let mut next_job = n;
    // Settle into steady state before timing (first completions pay the
    // initial rate computation / heap build).
    churn_events(&mut eng, link, &mut next_job, events.min(64), fast);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        churn_events(&mut eng, link, &mut next_job, events, fast);
        best = best.min(start.elapsed().as_secs_f64() / events as f64);
    }
    best
}

fn hilos_system(n: usize) -> HilosSystem {
    HilosSystem::new(&SystemSpec::a100_smartssd(n), &presets::opt_30b(), &HilosConfig::new(n))
        .unwrap()
        .with_sim_layers(1)
}

fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_serving.json".to_string());

    // -- 1: engine completion-index benchmark --
    let (ev_heap, end_heap) = engine_run(true);
    let (ev_scan, end_scan) = engine_run(false);
    assert_eq!(ev_heap, ev_scan, "variants must process identical workloads");
    let drift = end_heap.as_picos().abs_diff(end_scan.as_picos());
    assert!(
        drift <= ev_heap * 2,
        "variants drifted apart: {end_heap} vs {end_scan} over {ev_heap} events"
    );
    let heap_s = best_of(REPS, || {
        engine_run(true);
    });
    let scan_s = best_of(REPS, || {
        engine_run(false);
    });
    let speedup = scan_s / heap_s;
    eprintln!(
        "engine@{CONCURRENT}: heap {heap_s:.4}s, scan {scan_s:.4}s ({speedup:.2}x), \
         {ev_heap} completion events"
    );

    // -- 1b: virtual-time vs rescan fair-share crossover --
    let crossover_rows: Vec<String> = CROSSOVER
        .iter()
        .map(|&(n, events)| {
            let scan_spe = crossover_seconds_per_event(n, events, false);
            let fair_spe = crossover_seconds_per_event(n, events, true);
            let x = scan_spe / fair_spe;
            eprintln!(
                "crossover@{n}: scan {:.3}us/event, virtual-time {:.3}us/event ({x:.1}x)",
                scan_spe * 1e6,
                fair_spe * 1e6
            );
            format!(
                "{{\"jobs\": {n}, \"events\": {events}, \
                 \"scan_seconds_per_event\": {scan_spe:.9}, \
                 \"fair_seconds_per_event\": {fair_spe:.9}, \"fair_vs_scan\": {x:.3}}}"
            )
        })
        .collect();

    // -- 2: continuous-batching trace throughput (1M requests) --
    let trace = TraceConfig::azure_mix(1_000_000, 42).generate().expect("valid trace config");
    let system =
        HilosSystem::new(&SystemSpec::a100_smartssd(8), &presets::opt_30b(), &HilosConfig::new(8))
            .unwrap()
            .with_sim_layers(1);
    let start = Instant::now();
    let report =
        ServeEngine::new(system, ServeConfig::new(32).with_flow_impl(FlowEngineImpl::VirtualTime))
            .unwrap()
            .run_trace(&trace)
            .unwrap();
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(report.outcomes.len(), trace.len(), "trace must complete");
    // Tracing is off here, so every emission site takes the NullSink
    // fast path (one predictable branch); the 1M-request budget doubles
    // as the zero-cost guard for the instrumented engine.
    assert!(wall < 60.0, "1M-request trace blew its wall-clock budget: {wall:.1}s");
    assert!(report.events.is_empty(), "tracing off must retain no events");
    let rps = trace.len() as f64 / wall;
    eprintln!(
        "trace: {} requests in {wall:.3}s wall ({rps:.0} req/s), {} steps, \
         {} cached operating points, simulated {:.2} tok/s",
        trace.len(),
        report.steps,
        report.step_cache_entries,
        report.tokens_per_second()
    );

    // -- 3: three-way scheduling-policy comparison --
    let contended = TraceConfig { mean_interarrival_steps: 20, ..TraceConfig::azure_mix(256, 42) }
        .generate()
        .expect("valid trace config");
    let policy_rows: Vec<String> = [
        Box::new(Fifo) as Box<dyn SchedulingPolicy>,
        Box::new(DeadlineEdf::new()),
        Box::new(PriorityPreempt::new()),
    ]
    .into_iter()
    .map(|policy| {
        let sys = HilosSystem::new(
            &SystemSpec::a100_smartssd(8),
            &presets::opt_30b(),
            &HilosConfig::new(8),
        )
        .unwrap()
        .with_sim_layers(1);
        let name = policy.name();
        let r = ServeEngine::with_policy(sys, ServeConfig::new(8), policy)
            .unwrap()
            .run_trace(&contended)
            .unwrap();
        assert_eq!(r.outcomes.len(), contended.len(), "{name}: trace must complete");
        let short = r.class_report(RequestClass::Short).expect("Short class completed");
        eprintln!(
            "policy {name}: slo_goodput {:.2} tok/s, hit {:.1}%, Short TTFT p95 {:.1}s, \
             {} preemptions",
            r.slo_token_goodput(),
            r.slo_hit_rate() * 100.0,
            short.ttft.p95,
            r.preemptions,
        );
        format!(
            "{{\"policy\": \"{name}\", \"slo_goodput_tokens_per_second\": {:.4}, \
             \"slo_hit_rate\": {:.4}, \"short_ttft_p95_seconds\": {:.4}, \
             \"short_e2e_p95_seconds\": {:.4}, \"preemptions\": {}, \
             \"tokens_per_second\": {:.4}}}",
            r.slo_token_goodput(),
            r.slo_hit_rate(),
            short.ttft.p95,
            short.e2e.p95,
            r.preemptions,
            r.tokens_per_second(),
        )
    })
    .collect();

    // -- 4: chunked-prefill interference comparison --
    // Long-heavy prompts stretched 8x: prompt ingestion is the dominant
    // contender for device bandwidth, so the chunk mode decides the
    // decode-gap tail. Mirrors the pin in `tests/serving.rs`.
    let long_trace = {
        let mut cfg = TraceConfig::long_context(96, 42, 8).with_mean_interarrival(80);
        cfg.class_weights = [1, 3, 6];
        cfg.generate().expect("valid trace config")
    };
    let chunk_rows: Vec<String> =
        [("off", ChunkMode::Off), ("lump", ChunkMode::Lump), ("chunked", ChunkMode::chunked())]
            .into_iter()
            .map(|(name, mode)| {
                let r =
                    ServeEngine::new(hilos_system(8), ServeConfig::new(8).with_chunk_mode(mode))
                        .unwrap()
                        .run_trace(&long_trace)
                        .unwrap();
                assert_eq!(r.outcomes.len(), long_trace.len(), "{name}: trace must complete");
                let s = r.step_itl_stats();
                let ttft = r.ttft_stats();
                eprintln!(
            "chunk mode {name}: decode-gap p95 {:.2}s p99 {:.2}s max {:.2}s, TTFT p95 {:.0}s, \
             {} chunks ({} tokens), interference {:.0}s, stall {:.0}s",
            s.p95,
            s.p99,
            s.max,
            ttft.p95,
            r.prefill.chunks,
            r.prefill.chunk_tokens,
            r.prefill.interference_seconds,
            r.prefill.stall_seconds,
        );
                format!(
                    "{{\"mode\": \"{name}\", \"step_itl_p50_seconds\": {:.4}, \
             \"step_itl_p95_seconds\": {:.4}, \"step_itl_p99_seconds\": {:.4}, \
             \"step_itl_max_seconds\": {:.4}, \"ttft_p95_seconds\": {:.4}, \
             \"prefill_chunks\": {}, \"prefill_chunk_tokens\": {}, \
             \"interference_seconds\": {:.4}, \"stall_seconds\": {:.4}, \
             \"elapsed_seconds\": {:.4}}}",
                    s.p50,
                    s.p95,
                    s.p99,
                    s.max,
                    ttft.p95,
                    r.prefill.chunks,
                    r.prefill.chunk_tokens,
                    r.prefill.interference_seconds,
                    r.prefill.stall_seconds,
                    r.elapsed_s,
                )
            })
            .collect();

    // ChunkMode::Off golden-equivalence smoke: the refactored engine must
    // still reproduce the FNV constant `tests/serving.rs` pins for the
    // pre-chunking engine on the seeded Azure-mix trace.
    let golden_trace = TraceConfig::azure_mix(512, 42).generate().expect("valid trace config");
    let golden =
        ServeEngine::new(hilos_system(8), ServeConfig::new(16).with_chunk_mode(ChunkMode::Off))
            .unwrap()
            .run_trace(&golden_trace)
            .unwrap();
    let off_fnv = hilos_core::outcome_lifecycle_fnv(&golden.outcomes);
    eprintln!("ChunkMode::Off golden FNV: {off_fnv:#018x}");

    // -- 5: overload shedding --
    let overload = TraceConfig::azure_mix(256, 42)
        .with_mean_interarrival(10)
        .generate()
        .expect("valid trace config");
    let shed_rows: Vec<String> = [
        Box::new(DeadlineEdf::new()) as Box<dyn SchedulingPolicy>,
        Box::new(DeadlineEdf::with_shedding()),
    ]
    .into_iter()
    .map(|policy| {
        let name = policy.name();
        let r = ServeEngine::with_policy(hilos_system(8), ServeConfig::new(8), policy)
            .unwrap()
            .run_trace(&overload)
            .unwrap();
        assert_eq!(
            r.outcomes.len() + r.rejected.len() + r.shed.len(),
            overload.len(),
            "{name}: requests lost"
        );
        eprintln!(
            "shedding {name}: slo_goodput {:.3} tok/s, hit {:.1}%, {} completed, {} shed",
            r.slo_token_goodput(),
            r.slo_hit_rate() * 100.0,
            r.outcomes.len(),
            r.shed.len(),
        );
        format!(
            "{{\"policy\": \"{name}\", \"slo_goodput_tokens_per_second\": {:.4}, \
             \"slo_hit_rate\": {:.4}, \"completed\": {}, \"shed\": {}, \
             \"tokens_per_second\": {:.4}}}",
            r.slo_token_goodput(),
            r.slo_hit_rate(),
            r.outcomes.len(),
            r.shed.len(),
            r.tokens_per_second(),
        )
    })
    .collect();

    // -- 6: prefix KV-cache reuse on the shared-prefix trace --
    // Mirrors the acceptance test in `tests/serving.rs`: prompts
    // stretched 8x into the long-context regime, every fresh
    // conversation opening with the same 8192-token document prefix, 60%
    // of arrivals continuing a cached session, and arrivals light enough
    // that TTFT is prefill-bound.
    let shared = SharedPrefixConfig {
        system_prompt_tokens: 8192,
        follow_up_fraction: 0.6,
        follow_up_tokens: 256,
        max_turns: 8,
    };
    let prefix_trace = TraceConfig::long_context(192, 42, 8)
        .with_mean_interarrival(100)
        .with_shared_prefix(shared)
        .generate()
        .expect("valid trace config");
    let cache_run = |cache: Option<PrefixCacheConfig>| {
        let mut cfg = ServeConfig::new(16);
        if let Some(pc) = cache {
            cfg = cfg.with_prefix_cache(pc);
        }
        let r = ServeEngine::new(hilos_system(8), cfg).unwrap().run_trace(&prefix_trace).unwrap();
        assert_eq!(r.outcomes.len(), prefix_trace.len(), "prefix trace must complete");
        r
    };
    let cache_off = cache_run(None);
    let cache_on = cache_run(Some(PrefixCacheConfig::default()));
    assert_eq!(
        cache_on.generated_tokens, cache_off.generated_tokens,
        "cache must not change what is served"
    );
    let (ttft_off, ttft_on) = (cache_off.ttft_stats(), cache_on.ttft_stats());
    let pc = &cache_on.prefix;
    eprintln!(
        "prefix cache: TTFT p95 {:.1}s -> {:.1}s ({:.2}x), hit rate {:.1}%, \
         {} prefill tokens saved, {} demoted / {} recalled bytes",
        ttft_off.p95,
        ttft_on.p95,
        ttft_off.p95 / ttft_on.p95,
        pc.hit_rate() * 100.0,
        pc.saved_prefill_tokens,
        pc.demoted_bytes(),
        pc.recalled_bytes(),
    );

    // -- 7: ledger admission-aggregate micro-benchmark --
    // A 4096-device KV shard ledger at partial occupancy, probed with the
    // admission question every queued request asks each step: the O(1)
    // cached-aggregate path vs the O(devices) reference scan.
    const LEDGER_DEVICES: usize = 4096;
    const LEDGER_PROBES: usize = 100_000;
    let mut ledger = KvShardLedger::new(vec![
        ShardSpec { capacity_bytes: 1 << 30, weight: 1.0 };
        LEDGER_DEVICES
    ]);
    for id in 0..512u64 {
        ledger.allocate(id, (1 + id % 7) << 22).unwrap();
    }
    let probe_bytes = |i: usize| ((1 + i % 13) as u64) << 20;
    let cached_s = best_of(REPS, || {
        let mut admitted = 0usize;
        for i in 0..LEDGER_PROBES {
            admitted += usize::from(ledger.can_allocate(black_box(probe_bytes(i))));
        }
        black_box(admitted);
    });
    let scan_s = best_of(REPS, || {
        let mut admitted = 0usize;
        for i in 0..LEDGER_PROBES {
            admitted += usize::from(ledger.can_allocate_scan(black_box(probe_bytes(i))));
        }
        black_box(admitted);
    });
    let cached_ns = cached_s / LEDGER_PROBES as f64 * 1e9;
    let scan_ns = scan_s / LEDGER_PROBES as f64 * 1e9;
    let ledger_x = scan_ns / cached_ns;
    eprintln!(
        "ledger@{LEDGER_DEVICES}: cached {cached_ns:.1}ns/probe, \
         scan {scan_ns:.1}ns/probe ({ledger_x:.0}x)"
    );

    // -- 8: deterministic lifecycle tracing --
    // The shared-prefix trace once more with the event ring on: the
    // stream FNV is the pin the `trace-smoke` CI job gates, conservation
    // must hold, the attribution must decompose every completed
    // request's e2e exactly, and the Perfetto export must parse with
    // properly nested spans.
    use hilos_core::trace::{
        check_conservation, events_fnv, perfetto_json, spans_nest, validate_json,
        LatencyAttribution,
    };
    let traced = ServeEngine::new(
        hilos_system(8),
        ServeConfig::new(16)
            .with_chunk_mode(ChunkMode::chunked())
            .with_prefix_cache(PrefixCacheConfig::default())
            .with_tracing(1 << 20),
    )
    .unwrap()
    .run_trace(&prefix_trace)
    .unwrap();
    assert_eq!(traced.events_dropped, 0, "event ring must not wrap");
    let stream_fnv = events_fnv(&traced.events);
    let rings = [traced.events.as_slice()];
    let cons = check_conservation(&rings);
    assert!(cons.holds(), "event conservation violated: {cons:?}");
    let attr = LatencyAttribution::analyze(&rings);
    assert_eq!(attr.rows.len(), traced.outcomes.len(), "one attribution row per completion");
    assert!(
        attr.rows.iter().all(|r| r.components_sum() == r.e2e_s),
        "attribution must sum to e2e bit-exactly"
    );
    let doc = perfetto_json(&rings);
    validate_json(&doc).expect("Perfetto export must be valid JSON");
    let nested = spans_nest(&doc).expect("request and phase spans must nest");
    eprintln!(
        "tracing: {} events (0 dropped), stream FNV {stream_fnv:#018x}, \
         {} requests conserved, {} attribution rows, {nested} nested spans",
        traced.events.len(),
        cons.arrived,
        attr.rows.len(),
    );

    let json = format!(
        "{{\n  \"bench\": \"serving\",\n  \"note\": \"heap-indexed vs linear-scan \
         next_completion_time on a serving-shaped event loop ({CONCURRENT} concurrent jobs, \
         {POLLS} partial-advance polls per completion), the virtual-time vs rescan fair-share \
         crossover sweep, 1M-request continuous-batching trace throughput, and the three-way \
         scheduling-policy comparison on the contended seeded trace\",\n  \"engine\": {{\"concurrent_jobs\": {CONCURRENT}, \
         \"total_jobs\": {TOTAL_JOBS}, \"completion_events\": {ev_heap}, \
         \"heap_seconds\": {heap_s:.6}, \"scan_seconds\": {scan_s:.6}, \
         \"heap_vs_scan\": {speedup:.3}}},\n  \"crossover\": [\n    {}\n  ],\n  \
         \"trace\": {{\"requests\": {}, \"flow_impl\": \"virtual-time\", \
         \"wall_seconds\": {wall:.4}, \"requests_per_second\": {rps:.1}, \
         \"serving_steps\": {}, \"step_cache_entries\": {}, \"peak_batch\": {}, \
         \"simulated_tokens_per_second\": {:.3}, \"ttft_p99_seconds\": {:.3}}},\n  \
         \"policies\": [\n    {}\n  ],\n  \
         \"chunked\": {{\n    \"requests\": {}, \"prompt_scale\": 8, \
         \"off_golden_fnv\": \"{off_fnv:#018x}\",\n    \"modes\": [\n      {}\n    ]\n  }},\n  \
         \"shedding\": [\n    {}\n  ],\n  \
         \"prefix_cache\": {{\n    \"requests\": {}, \"system_prompt_tokens\": 8192, \
         \"follow_up_fraction\": 0.6, \"prompt_scale\": 8,\n    \
         \"generated_tokens_off\": {}, \"generated_tokens_on\": {},\n    \
         \"off\": {{\"ttft_p50_seconds\": {:.4}, \"ttft_p95_seconds\": {:.4}, \"hits\": {}}},\n    \
         \"on\": {{\"ttft_p50_seconds\": {:.4}, \"ttft_p95_seconds\": {:.4}, \"lookups\": {}, \
         \"hits\": {}, \"hit_rate\": {:.4}, \"saved_prefill_tokens\": {}, \
         \"recall_seconds\": {:.4}, \"demoted_bytes\": {}, \"recalled_bytes\": {}}},\n    \
         \"ttft_p50_off_vs_on\": {:.3}, \"ttft_p95_off_vs_on\": {:.3}\n  }},\n  \
         \"ledger_admission\": {{\"devices\": {LEDGER_DEVICES}, \"probes\": {LEDGER_PROBES}, \
         \"cached_ns_per_probe\": {cached_ns:.2}, \"scan_ns_per_probe\": {scan_ns:.2}, \
         \"cached_vs_scan\": {ledger_x:.3}}},\n  \
         \"tracing\": {{\"requests\": {}, \"events\": {}, \"events_dropped\": 0, \
         \"event_stream_fnv\": \"{stream_fnv:#018x}\", \"conserved_arrivals\": {}, \
         \"attribution_rows\": {}, \"attribution_exact\": true, \"json_valid\": true, \
         \"nested_spans\": {nested}, \"untraced_wall_seconds\": {wall:.4}}}\n}}\n",
        crossover_rows.join(",\n    "),
        trace.len(),
        report.steps,
        report.step_cache_entries,
        report.peak_batch,
        report.tokens_per_second(),
        report.ttft_stats().p99,
        policy_rows.join(",\n    "),
        long_trace.len(),
        chunk_rows.join(",\n      "),
        shed_rows.join(",\n    "),
        prefix_trace.len(),
        cache_off.generated_tokens,
        cache_on.generated_tokens,
        ttft_off.p50,
        ttft_off.p95,
        cache_off.prefix.hits,
        ttft_on.p50,
        ttft_on.p95,
        pc.lookups,
        pc.hits,
        pc.hit_rate(),
        pc.saved_prefill_tokens,
        pc.recall_seconds,
        pc.demoted_bytes(),
        pc.recalled_bytes(),
        ttft_off.p50 / ttft_on.p50,
        ttft_off.p95 / ttft_on.p95,
        prefix_trace.len(),
        traced.events.len(),
        cons.arrived,
        attr.rows.len(),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_serving.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
