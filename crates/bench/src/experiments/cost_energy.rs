//! Figures 16 and 17 — cost efficiency, endurance, energy, multi-node.

use crate::{run_flex_dram_autobatch, run_flex_ssd, run_hilos_config, SIM_LAYERS};
use hilos_baselines::VllmMultiNode;
use hilos_core::{HilosConfig, RunReport};
use hilos_llm::{presets, RequestClass};
use hilos_metrics::{
    energy, tokens_per_second_per_dollar, ActivitySnapshot, EnduranceModel, Table,
};
use hilos_platform::SystemSpec;

/// Figure 16(a): cost efficiency (tokens/s/$) normalized to FLEX(SSD) on
/// the A100, for 66B and 175B at 16K/32K.
pub fn fig16a() -> String {
    let mut out = String::from("Figure 16(a) — cost efficiency (token/s/$, normalized)\n");
    let mut t = Table::new(vec!["gpu", "model", "ctx", "system", "tok/s", "tok/s/$ (norm)"]);
    for model in [presets::opt_66b(), presets::opt_175b()] {
        for s in [16 * 1024u64, 32 * 1024] {
            let flex_spec = SystemSpec::a100_pm9a3(4);
            let Ok(base) = run_flex_ssd(&model, 16, s).map(|r| r.tokens_per_second()) else {
                continue;
            };
            let base_eff = tokens_per_second_per_dollar(&flex_spec, base);
            let mut push = |gpu: &str, name: &str, tps: Option<f64>, spec: &SystemSpec| {
                let cell = match tps {
                    Some(v) => format!("{:.2}x", tokens_per_second_per_dollar(spec, v) / base_eff),
                    None => "OOM".into(),
                };
                t.row(vec![
                    gpu.into(),
                    model.name().into(),
                    format!("{}K", s / 1024),
                    name.into(),
                    tps.map(|v| format!("{v:.4}")).unwrap_or_else(|| "-".into()),
                    cell,
                ]);
            };
            push("A100", "FLEX(SSD)", Some(base), &flex_spec);
            let dram =
                run_flex_dram_autobatch(&model, 16, s).ok().map(|(_, r)| r.tokens_per_second());
            push("A100", "FLEX(DRAM)", dram, &flex_spec);
            for n in [4usize, 8, 16] {
                let spec = SystemSpec::a100_smartssd(n);
                let tps = run_hilos_config(&spec, &model, &HilosConfig::new(n), 16, s)
                    .ok()
                    .map(|r| r.tokens_per_second());
                push("A100", &format!("HILOS({n})"), tps, &spec);
            }
            // H100 comparisons.
            let h100_flex_spec = SystemSpec::h100_pm9a3(4);
            let h100_flex = hilos_baselines::FlexGenSystem::new(
                &h100_flex_spec,
                &model,
                hilos_baselines::KvLocation::SsdArray,
            )
            .unwrap()
            .with_sim_layers(SIM_LAYERS)
            .run_decode(16, s, 8)
            .ok()
            .map(|r| r.tokens_per_second());
            push("H100", "FLEX(SSD)", h100_flex, &h100_flex_spec);
            let h100_hilos_spec = SystemSpec::h100_smartssd(16);
            let h100_hilos =
                run_hilos_config(&h100_hilos_spec, &model, &HilosConfig::new(16), 16, s)
                    .ok()
                    .map(|r| r.tokens_per_second());
            push("H100", "HILOS(16)", h100_hilos, &h100_hilos_spec);
        }
    }
    out.push_str(&t.to_string());
    out
}

/// Figure 16(b): endurance — total serviceable requests (millions).
pub fn fig16b() -> String {
    let mut out = String::from("Figure 16(b) — serviceable requests (millions, 16 devices)\n");
    let mut t =
        Table::new(vec!["class", "model", "FLEX(16SSD)", "HILOS c=16", "HILOS c=32", "gain(c=16)"]);
    let e = EnduranceModel::smartssd_array(16);
    for class in RequestClass::all() {
        for model in [presets::opt_30b(), presets::opt_66b(), presets::opt_175b()] {
            let flex = e.serviceable_requests(e.flexgen_request_bytes(&model, class, 16));
            let h16 = e.serviceable_requests(e.hilos_request_bytes(&model, class, 0.5, 16));
            let h32 = e.serviceable_requests(e.hilos_request_bytes(&model, class, 0.5, 32));
            t.row(vec![
                class.to_string(),
                model.name().into(),
                format!("{:.2}", flex / 1e6),
                format!("{:.2}", h16 / 1e6),
                format!("{:.2}", h32 / 1e6),
                format!("{:.2}x", h16 / flex),
            ]);
        }
    }
    out.push_str(&t.to_string());
    out
}

fn activity_of(report: &RunReport, spec: &SystemSpec) -> ActivitySnapshot {
    let n = spec.storage.device_count() as f64;
    let read_bw = spec.storage.ssd_spec().seq_read_bw();
    let ssd_bytes = report.internal_read_bytes_per_step + report.host_pcie_bytes_per_step;
    let ssd = (ssd_bytes / (n * read_bw * report.avg_step_seconds)).clamp(0.0, 1.0);
    ActivitySnapshot {
        seconds: report.avg_step_seconds,
        gpu: report.gpu_utilization,
        cpu: report.cpu_utilization,
        dram: report.dram_utilization,
        ssd,
    }
}

/// Figure 17(a): energy per generated token, by component, normalized to
/// FLEX(SSD).
pub fn fig17a() -> String {
    let mut out = String::from("Figure 17(a) — energy per token (J), breakdown\n");
    let mut t =
        Table::new(vec!["model", "system", "cpu", "dram", "gpu", "ssd", "total J/tok", "norm"]);
    for model in [presets::opt_30b(), presets::opt_66b(), presets::opt_175b()] {
        let s = 32 * 1024u64;
        let mut rows: Vec<(String, f64, hilos_metrics::EnergyBreakdown)> = Vec::new();
        if let Ok(r) = run_flex_ssd(&model, 16, s) {
            let spec = SystemSpec::a100_pm9a3(4);
            let e = energy(&spec, &activity_of(&r, &spec));
            rows.push(("FLEX(SSD)".into(), r.batch as f64, e));
        }
        if let Ok((bs, r)) = run_flex_dram_autobatch(&model, 16, s) {
            let spec = SystemSpec::a100_pm9a3(4);
            let e = energy(&spec, &activity_of(&r, &spec));
            rows.push((format!("FLEX(DRAM) bs={bs}"), bs as f64, e));
        }
        for n in [4usize, 8, 16] {
            let spec = SystemSpec::a100_smartssd(n);
            if let Ok(r) = run_hilos_config(&spec, &model, &HilosConfig::new(n), 16, s) {
                let e = energy(&spec, &activity_of(&r, &spec));
                rows.push((format!("HILOS({n})"), r.batch as f64, e));
            }
        }
        let base = rows.first().map(|(_, bs, e)| e.total() / bs).unwrap_or(1.0);
        for (name, bs, e) in rows {
            t.row(vec![
                model.name().into(),
                name,
                format!("{:.1}", e.cpu_j / bs),
                format!("{:.1}", e.dram_j / bs),
                format!("{:.1}", e.gpu_j / bs),
                format!("{:.1}", e.ssd_j / bs),
                format!("{:.1}", e.total() / bs),
                format!("{:.2}", (e.total() / bs) / base),
            ]);
        }
    }
    out.push_str(&t.to_string());
    out
}

/// Figure 17(b): multi-node vLLM (2×4×A6000) versus offloading systems on
/// OPT-175B.
pub fn fig17b() -> String {
    let mut out = String::from("Figure 17(b) — total throughput (token/s), OPT-175B\n");
    let mut t = Table::new(vec!["ctx", "FLEX(SSD)", "FLEX(DRAM)", "vLLM(8xA6000)", "HILOS(16)"]);
    let model = presets::opt_175b();
    let vllm = VllmMultiNode::paper_testbed();
    for s in [16 * 1024u64, 32 * 1024] {
        let flex = run_flex_ssd(&model, 16, s).map(|r| r.tokens_per_second());
        let dram = run_flex_dram_autobatch(&model, 16, s).map(|(_, r)| r.tokens_per_second());
        let v = vllm.tokens_per_second(&model, 1, s);
        let h =
            run_hilos_config(&SystemSpec::a100_smartssd(16), &model, &HilosConfig::new(16), 16, s)
                .map(|r| r.tokens_per_second());
        t.row(vec![
            format!("{}K", s / 1024),
            crate::tps_cell(&flex),
            crate::tps_cell(&dram),
            crate::tps_cell(&v),
            crate::tps_cell(&h),
        ]);
    }
    out.push_str(&t.to_string());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig16a_hilos_more_cost_effective_than_flex_at_66b() {
        // Paper: up to 2.02x higher tokens/s/$ for the 66B model.
        let model = presets::opt_66b();
        let flex_spec = SystemSpec::a100_pm9a3(4);
        let base = run_flex_ssd(&model, 16, 32 * 1024).unwrap().tokens_per_second();
        let base_eff = tokens_per_second_per_dollar(&flex_spec, base);
        let spec = SystemSpec::a100_smartssd(16);
        let h = run_hilos_config(&spec, &model, &HilosConfig::new(16), 16, 32 * 1024)
            .unwrap()
            .tokens_per_second();
        let eff = tokens_per_second_per_dollar(&spec, h) / base_eff;
        assert!(eff > 1.0, "HILOS cost efficiency {eff} should beat FLEX(SSD)");
        assert!(eff < 5.0, "implausibly high {eff}");
    }

    #[test]
    fn fig17a_hilos_saves_energy() {
        // Paper: up to 85% energy reduction vs the worst baseline.
        let model = presets::opt_66b();
        let flex_spec = SystemSpec::a100_pm9a3(4);
        let r = run_flex_ssd(&model, 16, 32 * 1024).unwrap();
        let flex_jpt = energy(&flex_spec, &activity_of(&r, &flex_spec)).total() / r.batch as f64;
        let spec = SystemSpec::a100_smartssd(16);
        let h = run_hilos_config(&spec, &model, &HilosConfig::new(16), 16, 32 * 1024).unwrap();
        let hilos_jpt = energy(&spec, &activity_of(&h, &spec)).total() / h.batch as f64;
        let saving = 1.0 - hilos_jpt / flex_jpt;
        // Direction and a solid margin; our conservative GPU/SmartSSD
        // active-power figures keep the magnitude below the paper's
        // up-to-85% headline (see EXPERIMENTS.md).
        assert!(saving > 0.25, "energy saving {saving} too small");
    }

    #[test]
    fn fig17b_hilos_beats_multinode_vllm() {
        // Paper: 1.64x-1.81x over the 8-GPU vLLM deployment.
        let model = presets::opt_175b();
        let v = VllmMultiNode::paper_testbed().tokens_per_second(&model, 1, 16 * 1024).unwrap();
        let h = run_hilos_config(
            &SystemSpec::a100_smartssd(16),
            &model,
            &HilosConfig::new(16),
            16,
            16 * 1024,
        )
        .unwrap()
        .tokens_per_second();
        let ratio = h / v;
        assert!(ratio > 1.2, "HILOS/vLLM ratio {ratio}");
    }

    #[test]
    fn fig16b_gains_in_paper_band() {
        let s = fig16b();
        assert!(s.contains("HILOS c=16"));
    }
}
