//! Extension experiments beyond the paper's figures: ablations of the
//! accelerator design choices DESIGN.md calls out, and failure injection.

use crate::{run_flex_ssd, SIM_LAYERS};
use hilos_accel::AccelTimingModel;
use hilos_core::{spill_nand_bytes_per_token, HilosConfig, HilosSystem};
use hilos_llm::presets;
use hilos_metrics::Table;
use hilos_platform::SystemSpec;

/// Design-choice ablations: two-pass vs three-pass softmax, online
/// transpose vs stored `Kᵀ`, page-size × spill-interval, PCIe 5.0 feed.
pub fn ablations() -> String {
    let mut out = String::from("Ablation A — two-pass vs three-pass softmax (the §4.4 choice)\n");
    let mut t = Table::new(vec!["d_group", "passes", "DRAM B/block", "GFLOPS", "KV GB/s"]);
    for d in [1u32, 4, 5] {
        for passes in [2u32, 3] {
            let mut m = AccelTimingModel::smartssd(d);
            m.score_passes = passes;
            t.row(vec![
                d.to_string(),
                passes.to_string(),
                format!("{:.0}", m.bytes_per_block(128)),
                format!("{:.1}", m.sustained_gflops(128)),
                format!("{:.2}", m.kv_bytes_per_sec(128) / 1e9),
            ]);
        }
    }
    out.push_str(&t.to_string());

    out.push_str("\nAblation B — online transpose vs stored-K^T (extra flash copy of K)\n");
    let mut t = Table::new(vec!["model", "prefill KV writes", "with stored-K^T", "increase"]);
    for model in [presets::opt_66b(), presets::opt_175b()] {
        // Storing K^T alongside K adds one more K-sized copy per token.
        let kv = model.kv_bytes_per_token() as f64;
        let k_extra = kv / 2.0;
        t.row(vec![
            model.name().into(),
            format!("{:.2} MB/token", kv / 1e6),
            format!("{:.2} MB/token", (kv + k_extra) / 1e6),
            format!("{:.0}%", k_extra / kv * 100.0),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str("(the online transpose avoids a 50% flash-write and endurance overhead)\n");

    out.push_str("\nAblation C — page size x spill interval (write amplification)\n");
    let mut t = Table::new(vec!["page", "c=1", "c=4", "c=16", "c=32", "c=64"]);
    let model = presets::opt_66b();
    for page in [4096u64, 16384] {
        let mut cells = vec![format!("{}KiB", page / 1024)];
        for c in [1u32, 4, 16, 32, 64] {
            let waf =
                spill_nand_bytes_per_token(&model, c, page) / model.kv_bytes_per_token() as f64;
            cells.push(format!("{waf:.1}x"));
        }
        t.row(cells);
    }
    out.push_str(&t.to_string());
    out.push_str("(16 KiB pages — §7.3 — push the WAF-1 point from c=16 to c=32)\n");

    out.push_str("\nAblation D — PCIe 5.0 feed vs kernel drain (§7.2)\n");
    let mut t = Table::new(vec!["config", "feed GB/s", "drain GB/s", "bound by"]);
    for (name, feed, dram) in [
        ("PCIe3 SSD + DDR4 FPGA", 3.2e9, 19.2e9),
        ("PCIe5 SSD + DDR4 FPGA", 12.8e9, 19.2e9),
        ("PCIe5 SSD + LPDDR5X (ISP)", 12.8e9, 68e9),
    ] {
        let mut m = AccelTimingModel::smartssd(1);
        m.dram_bw = dram;
        let drain = m.kv_bytes_per_sec(128);
        t.row(vec![
            name.into(),
            format!("{:.1}", feed / 1e9),
            format!("{:.1}", drain / 1e9),
            if drain >= feed {
                "storage (good)".into()
            } else {
                "accelerator (§7.2 problem)".into()
            },
        ]);
    }
    out.push_str(&t.to_string());
    out
}

/// Failure injection: one degraded SmartSSD gates the statically
/// partitioned HILOS pipeline.
pub fn straggler() -> String {
    let mut out = String::from(
        "Straggler study — one slow device in an 8-device HILOS array (OPT-66B, bs=16, s=32K)\n",
    );
    let model = presets::opt_66b();
    let mut t = Table::new(vec!["degradation", "tok/s", "vs healthy", "vs FLEX(SSD)"]);
    let flex =
        run_flex_ssd(&model, 16, 32 * 1024).map(|r| r.tokens_per_second()).unwrap_or(f64::NAN);
    let mut healthy = 0.0;
    for factor in [1.0f64, 0.5, 0.25, 0.1] {
        let sys = HilosSystem::new(&SystemSpec::a100_smartssd(8), &model, &HilosConfig::new(8))
            .unwrap()
            .with_sim_layers(SIM_LAYERS)
            .with_degraded_device(0, factor.max(1e-3));
        let tps = sys.run_decode(16, 32 * 1024, 8).map(|r| r.tokens_per_second()).unwrap_or(0.0);
        if factor == 1.0 {
            healthy = tps;
        }
        t.row(vec![
            if factor == 1.0 { "none".into() } else { format!("dev0 at {:.0}%", factor * 100.0) },
            format!("{tps:.4}"),
            format!("{:.2}x", tps / healthy),
            format!("{:.2}x", tps / flex),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str(
        "(static batch/head partitioning makes the slowest device gate each step —\n \
         a deployment sensitivity the paper's design inherits)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_pass_softmax_costs_bandwidth() {
        let two = AccelTimingModel::smartssd(5);
        let mut three = two;
        three.score_passes = 3;
        assert!(three.kv_bytes_per_sec(128) < two.kv_bytes_per_sec(128));
        assert!(three.bytes_per_block(128) > two.bytes_per_block(128));
    }

    #[test]
    fn straggler_degrades_gracefully_but_gates() {
        let s = straggler();
        assert!(s.contains("dev0 at 50%"));
        assert!(s.contains("Straggler"));
    }

    #[test]
    fn ablations_render() {
        let s = ablations();
        for needle in ["two-pass", "stored-K^T", "16 KiB", "PCIe 5.0"] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn degraded_device_reduces_throughput() {
        let model = presets::opt_66b();
        let base = HilosSystem::new(&SystemSpec::a100_smartssd(8), &model, &HilosConfig::new(8))
            .unwrap()
            .with_sim_layers(2)
            .run_decode(16, 32 * 1024, 2)
            .unwrap()
            .tokens_per_second();
        let degraded =
            HilosSystem::new(&SystemSpec::a100_smartssd(8), &model, &HilosConfig::new(8))
                .unwrap()
                .with_sim_layers(2)
                .with_degraded_device(0, 0.25)
                .run_decode(16, 32 * 1024, 2)
                .unwrap()
                .tokens_per_second();
        assert!(degraded < base * 0.9, "straggler should hurt: {degraded} vs {base}");
    }
}
