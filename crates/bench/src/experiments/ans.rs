//! Figure 4 — attention near storage: breakdown and host utilization.

use crate::{run_flex_ssd, SIM_LAYERS};
use hilos_core::{HilosConfig, HilosSystem};
use hilos_llm::presets;
use hilos_metrics::Table;
use hilos_platform::SystemSpec;

/// Figure 4(b)(c): decode latency breakdown and host-resource utilization,
/// FLEX(SSD) baseline versus ANS-enabled HILOS (no X-cache, to isolate the
/// §4.1 mechanism exactly as the paper's figure does).
pub fn fig4() -> String {
    let model = presets::opt_66b();
    let mut out = String::from("Figure 4(b) — decoding latency breakdown (OPT-66B, bs=16)\n");
    let mut t = Table::new(vec!["system", "ctx", "loadw%", "loadkv%", "storekv%", "compute%"]);
    let mut util = Table::new(vec!["system", "ctx", "cpu%", "gpu%", "dram%"]);

    for s in [16 * 1024u64, 32 * 1024] {
        // Baseline.
        if let Ok(r) = run_flex_ssd(&model, 16, s) {
            let total: f64 = r.category_seconds.iter().map(|(_, v)| v).sum();
            let pick = |cats: &[&str]| {
                r.category_seconds
                    .iter()
                    .filter(|(c, _)| cats.contains(&c.as_str()))
                    .map(|(_, v)| v)
                    .sum::<f64>()
                    / total
                    * 100.0
            };
            t.row(vec![
                "Baseline(SSD+CPU)".into(),
                format!("{}K", s / 1024),
                format!("{:.1}", 0.0f64.max(pick(&["loadw"]))),
                format!("{:.1}", 0.0f64.max(pick(&["loadkv", "atnmem"]))),
                format!("{:.1}", 0.0f64.max(pick(&["storekv"]))),
                format!("{:.1}", 0.0f64.max(pick(&["qkv", "atn", "mlp"]))),
            ]);
            util.row(vec![
                "Baseline(SSD+CPU)".into(),
                format!("{}K", s / 1024),
                format!("{:.1}", r.cpu_utilization * 100.0),
                format!("{:.1}", r.gpu_utilization * 100.0),
                format!("{:.1}", r.dram_utilization * 100.0),
            ]);
        }
        // ANS.
        let ans = HilosSystem::new(
            &SystemSpec::a100_smartssd(16),
            &model,
            &HilosConfig::ans_only(16).with_writeback(true),
        )
        .unwrap()
        .with_sim_layers(SIM_LAYERS);
        if let Ok(r) = ans.run_decode(16, s, 8) {
            let total: f64 = r.category_seconds.iter().map(|(_, v)| v).sum();
            let pick = |cats: &[&str]| {
                r.category_seconds
                    .iter()
                    .filter(|(c, _)| cats.contains(&c.as_str()))
                    .map(|(_, v)| v)
                    .sum::<f64>()
                    / total
                    * 100.0
            };
            t.row(vec![
                "Proposed(ANS)".into(),
                format!("{}K", s / 1024),
                format!("{:.1}", 0.0f64.max(pick(&["loadw"]))),
                format!("{:.1}", 0.0f64.max(pick(&["loadkv"]))),
                format!("{:.1}", 0.0f64.max(pick(&["spill", "storekv"]))),
                format!("{:.1}", 0.0f64.max(pick(&["qkv", "atn", "mlp", "partial"]))),
            ]);
            util.row(vec![
                "Proposed(ANS)".into(),
                format!("{}K", s / 1024),
                format!("{:.1}", r.cpu_utilization * 100.0),
                format!("{:.1}", r.gpu_utilization * 100.0),
                format!("{:.1}", r.dram_utilization * 100.0),
            ]);
        }
    }
    out.push_str(&t.to_string());
    out.push_str("\nFigure 4(c) — host resource utilization\n");
    out.push_str(&util.to_string());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shows_both_systems() {
        let s = fig4();
        assert!(s.contains("Baseline(SSD+CPU)"));
        assert!(s.contains("Proposed(ANS)"));
        assert!(s.contains("Figure 4(c)"));
    }
}
