//! Figures 13, 14 and 15 — sensitivity studies and the ablation.

use crate::{run_flex_ssd, SIM_LAYERS};
use hilos_core::{AlphaPolicy, HilosConfig, HilosSystem};
use hilos_llm::{presets, BatchSpec, ModelConfig};
use hilos_metrics::Table;
use hilos_platform::SystemSpec;

fn hilos_with(n: usize, model: &ModelConfig, cfg: HilosConfig) -> HilosSystem {
    HilosSystem::new(&SystemSpec::a100_smartssd(n), model, &cfg)
        .unwrap()
        .with_sim_layers(SIM_LAYERS)
}

/// Figure 13: spill-interval (c) × X-cache ratio (α) sensitivity on
/// OPT-30B and OPT-66B (HILOS, 16 devices, bs=16, s=32K).
pub fn fig13() -> String {
    let mut out = String::from("Figure 13 — throughput (token/s) vs spill interval c and alpha\n");
    for model in [presets::opt_30b(), presets::opt_66b()] {
        out.push_str(&format!("\n{} (bs=16, s=32K, 16 SmartSSDs)\n", model.name()));
        let mut t = Table::new(vec!["c", "a=0%", "a=12.5%", "a=25%", "a=50%", "a=75%"]);
        for c in [2u32, 4, 8, 16, 32, 64] {
            let mut cells = vec![c.to_string()];
            for alpha in [0.0, 0.125, 0.25, 0.5, 0.75] {
                let cfg = HilosConfig::new(16)
                    .with_spill_interval(c)
                    .with_alpha(AlphaPolicy::Fixed(alpha));
                let sys = hilos_with(16, &model, cfg);
                // Sample a full spill cycle.
                let tps = sys
                    .run_decode(16, 32 * 1024, c as u64)
                    .map(|r| r.tokens_per_second())
                    .unwrap_or(0.0);
                cells.push(format!("{tps:.4}"));
            }
            t.row(cells);
        }
        // Reference: no buffering at all (per-step sub-page write-through).
        let mut cells = vec!["naive".to_string()];
        for alpha in [0.0, 0.125, 0.25, 0.5, 0.75] {
            let cfg =
                HilosConfig::new(16).with_writeback(false).with_alpha(AlphaPolicy::Fixed(alpha));
            let tps = hilos_with(16, &model, cfg)
                .run_decode(16, 32 * 1024, 2)
                .map(|r| r.tokens_per_second())
                .unwrap_or(0.0);
            cells.push(format!("{tps:.4}"));
        }
        t.row(cells);
        out.push_str(&t.to_string());
    }
    out.push_str(
        "(alpha sensitivity matches the paper; the paper's additional c-sensitivity is\n \
         dominated by XRT DMA synchronization overheads our flow model does not capture)\n",
    );
    out
}

/// Figure 14: total execution time (prefill + decode) by output length —
/// the amortization analysis.
pub fn fig14() -> String {
    let mut out =
        String::from("Figure 14 — total time (s) by output length: FLEX(SSD) vs HILOS(16)\n");
    let mut t = Table::new(vec![
        "model",
        "ctx",
        "out",
        "FLEX prefill",
        "FLEX decode",
        "HILOS prefill",
        "HILOS decode",
        "speedup",
    ]);
    for model in [presets::opt_30b(), presets::opt_66b()] {
        for s in [16 * 1024u64, 32 * 1024] {
            for out_len in [16u64, 32, 64, 128] {
                let flex = hilos_baselines::FlexGenSystem::new(
                    &SystemSpec::a100_pm9a3(4),
                    &model,
                    hilos_baselines::KvLocation::SsdArray,
                )
                .unwrap()
                .with_sim_layers(SIM_LAYERS);
                let f_pf = flex.run_prefill(16, s).unwrap_or(f64::NAN);
                let f_dec =
                    flex.run_decode(16, s, out_len).map(|r| r.decode_seconds).unwrap_or(f64::NAN);
                let hilos = hilos_with(16, &model, HilosConfig::new(16));
                let job = hilos.run_job(&BatchSpec::new(16, s, out_len)).unwrap();
                let speedup = (f_pf + f_dec) / job.total_seconds();
                t.row(vec![
                    model.name().into(),
                    format!("{}K", s / 1024),
                    out_len.to_string(),
                    format!("{f_pf:.1}"),
                    format!("{f_dec:.1}"),
                    format!("{:.1}", job.prefill.seconds),
                    format!("{:.1}", job.decode.decode_seconds),
                    format!("{speedup:.2}x"),
                ]);
            }
        }
    }
    out.push_str(&t.to_string());
    out
}

/// Figure 15: the ablation — FLEX(SSD) → ANS → ANS+WB → ANS+X → ANS+WB+X.
pub fn fig15() -> String {
    let mut out = String::from("Figure 15 — ablation, normalized to FLEX(SSD)\n");
    let mut t =
        Table::new(vec!["model", "ctx", "bs", "ANS", "ANS+WB", "ANS+X", "ANS+WB+X", "FLEX tok/s"]);
    for model in [presets::opt_30b(), presets::opt_66b(), presets::glam_143b()] {
        for s in [16 * 1024u64, 32 * 1024, 64 * 1024] {
            for bs in [16u32, 32] {
                let Ok(base) = run_flex_ssd(&model, bs, s).map(|r| r.tokens_per_second()) else {
                    continue;
                };
                let variant = |wb: bool, x: bool| -> String {
                    let cfg = HilosConfig::ans_only(16).with_writeback(wb).with_xcache(x);
                    match hilos_with(16, &model, cfg).run_decode(bs, s, 8) {
                        Ok(r) => format!("{:.2}x", r.tokens_per_second() / base),
                        Err(_) => "OOM".into(),
                    }
                };
                t.row(vec![
                    model.name().into(),
                    format!("{}K", s / 1024),
                    bs.to_string(),
                    variant(false, false),
                    variant(true, false),
                    variant(false, true),
                    variant(true, true),
                    format!("{base:.4}"),
                ]);
            }
        }
    }
    out.push_str(&t.to_string());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_alpha_sweep_peaks_at_moderate_alpha() {
        // On the 16-device testbed α=50% must beat α=0 (Fig 13's shape).
        let model = presets::opt_66b();
        let run = |alpha: f64| {
            let cfg =
                HilosConfig::new(16).with_spill_interval(16).with_alpha(AlphaPolicy::Fixed(alpha));
            hilos_with(16, &model, cfg).run_decode(16, 32 * 1024, 8).unwrap().tokens_per_second()
        };
        let a0 = run(0.0);
        let a50 = run(0.5);
        assert!(a50 > a0, "alpha=0.5 {a50} should beat alpha=0 {a0}");
    }

    #[test]
    fn fig14_speedup_grows_with_output_length() {
        // Longer outputs amortize prefill: the HILOS advantage grows.
        let model = presets::opt_66b();
        let hilos = hilos_with(16, &model, HilosConfig::new(16));
        let flex = hilos_baselines::FlexGenSystem::new(
            &SystemSpec::a100_pm9a3(4),
            &model,
            hilos_baselines::KvLocation::SsdArray,
        )
        .unwrap()
        .with_sim_layers(SIM_LAYERS);
        let speedup = |out_len: u64| {
            let f = flex.run_prefill(16, 16 * 1024).unwrap()
                + flex.run_decode(16, 16 * 1024, out_len).unwrap().decode_seconds;
            let h = hilos.run_job(&BatchSpec::new(16, 16 * 1024, out_len)).unwrap();
            f / h.total_seconds()
        };
        let s16 = speedup(16);
        let s128 = speedup(128);
        assert!(s128 > s16, "speedup should grow: {s16} -> {s128}");
    }

    #[test]
    fn fig15_ablation_ordering() {
        // Each optimization must help: ANS < ANS+WB ≤ ANS+WB+X, and X is
        // the bigger lever (paper: WB up to 1.32x, X up to 1.64x over ANS).
        let model = presets::opt_66b();
        let base = run_flex_ssd(&model, 16, 32 * 1024).unwrap().tokens_per_second();
        let run = |wb: bool, x: bool| {
            let cfg = HilosConfig::ans_only(16).with_writeback(wb).with_xcache(x);
            hilos_with(16, &model, cfg).run_decode(16, 32 * 1024, 8).unwrap().tokens_per_second()
        };
        let ans = run(false, false);
        let ans_wb = run(true, false);
        let ans_x = run(false, true);
        let full = run(true, true);
        assert!(ans > base, "ANS {ans} must beat FLEX(SSD) {base}");
        assert!(ans_wb > ans, "WB must help: {ans_wb} vs {ans}");
        assert!(ans_x > ans, "X must help: {ans_x} vs {ans}");
        assert!(full >= ans_wb.max(ans_x) * 0.95, "full {full} should be best-ish");
        assert!(ans_x > ans_wb, "X should be the bigger lever");
    }
}
