//! Schedule visualization: the Fig. 4(a) decode workflow as an executed
//! Gantt chart, plus its critical path.

use hilos_accel::AccelTimingModel;
use hilos_core::{build_hilos_decode_step, DecodeStepSpec, HilosConfig};
use hilos_platform::{BuiltSystem, SystemSpec};
use hilos_sim::{critical_path, execute, gantt};

/// Renders one HILOS decoding layer (4 devices, OPT-66B-like shapes) as a
/// text Gantt chart with the critical path, showing the §4.1/§4.2 overlap:
/// weights stream while the devices read KV internally and the GPU
/// regenerates the X shard.
pub fn schedule() -> String {
    let model = hilos_llm::presets::opt_66b();
    let config = HilosConfig::new(4);
    let mut sys = BuiltSystem::build(
        &SystemSpec::a100_smartssd(4),
        Some(&AccelTimingModel::smartssd(model.d_group())),
        model.head_dim(),
    )
    .expect("build");
    let step = DecodeStepSpec {
        batch: 16,
        context: 16 * 1024,
        alpha: 0.5,
        buffered_tokens: 8,
        spill_now: true,
        spill_tokens: 16,
        sim_layers: 1,
    };
    let graph = build_hilos_decode_step(&sys, &model, &config, &step);
    let timeline = execute(&mut sys.engine, &graph).expect("execute");

    let mut out = String::from(
        "HILOS decode schedule — one layer, 4 SmartSSDs, OPT-66B, bs=16, s=16K, alpha=0.5\n\n",
    );
    out.push_str(&gantt(&graph, &timeline, 60));
    out.push_str("\ncritical path: ");
    let path: Vec<String> = critical_path(&graph, &timeline)
        .into_iter()
        .map(|id| graph.task(id).label().to_string())
        .collect();
    out.push_str(&path.join(" -> "));
    out.push('\n');
    out.push_str(&format!("layer makespan: {}\n", timeline.makespan()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_renders_the_fig4a_stages() {
        let s = schedule();
        for stage in ["loadw:attn0", "qkv:l0", "loadkv:", "atn:", "loadx:", "regen:", "mlp:l0"] {
            assert!(s.contains(stage), "missing stage {stage} in:\n{s}");
        }
        assert!(s.contains("critical path:"));
        // Spills render as background bars.
        assert!(s.contains('~'));
    }
}
