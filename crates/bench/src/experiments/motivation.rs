//! Figure 2 — motivational experiments with OPT-175B (§3.1).

use crate::run_flex_ssd;
use hilos_llm::{footprint, presets, BatchSpec};
use hilos_metrics::{fmt_bytes, Table};

/// Figure 2: (a) memory-footprint breakdown, (b) execution-time breakdown
/// of the FLEX(SSD)-style system, across context length and batch size.
pub fn fig2() -> String {
    let model = presets::opt_175b();
    let mut out = String::from("Figure 2(a) — memory footprint breakdown (OPT-175B)\n");
    let mut t = Table::new(vec!["ctx", "bs", "weights", "kv_cache", "others", "total", "kv%"]);
    for s in [8 * 1024u64, 32 * 1024, 128 * 1024] {
        for bs in [1u32, 4, 16] {
            let fp = footprint(&model, &BatchSpec::new(bs, s, 64));
            t.row(vec![
                format!("{}K", s / 1024),
                bs.to_string(),
                fmt_bytes(fp.weights as f64),
                fmt_bytes(fp.kv_cache as f64),
                fmt_bytes(fp.others as f64),
                fmt_bytes(fp.total() as f64),
                format!("{:.1}%", fp.kv_fraction() * 100.0),
            ]);
        }
    }
    out.push_str(&t.to_string());

    out.push_str("\nFigure 2(b) — execution-time breakdown, FLEX(SSD)-style (OPT-175B)\n");
    let mut t =
        Table::new(vec!["ctx", "bs", "kv_io%", "weights%", "others%", "tok/s", "speedup_vs_bs1"]);
    for s in [8 * 1024u64, 32 * 1024] {
        let mut base_tps = None;
        for bs in [1u32, 4, 16] {
            match run_flex_ssd(&model, bs, s) {
                Ok(r) => {
                    let total: f64 = r.category_seconds.iter().map(|(_, v)| v).sum();
                    let pick = |cats: &[&str]| -> f64 {
                        r.category_seconds
                            .iter()
                            .filter(|(c, _)| cats.contains(&c.as_str()))
                            .map(|(_, v)| v)
                            .sum::<f64>()
                            / total
                            * 100.0
                    };
                    let kv = pick(&["loadkv", "atnmem", "storekv"]);
                    let w = pick(&["loadw"]);
                    let tps = r.tokens_per_second();
                    let speedup = match base_tps {
                        None => {
                            base_tps = Some(tps);
                            1.0
                        }
                        Some(b) => tps / b,
                    };
                    t.row(vec![
                        format!("{}K", s / 1024),
                        bs.to_string(),
                        format!("{kv:.1}"),
                        format!("{w:.1}"),
                        format!("{:.1}", 100.0 - kv - w),
                        format!("{tps:.4}"),
                        format!("{speedup:.2}x"),
                    ]);
                }
                Err(e) => {
                    t.row(vec![format!("{}K", s / 1024), bs.to_string(), e.to_string()]);
                }
            }
        }
    }
    out.push_str(&t.to_string());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_kv_dominates_footprint_and_time() {
        let s = fig2();
        assert!(s.contains("Figure 2(a)"));
        assert!(s.contains("Figure 2(b)"));
        // Long-context rows must show TB-scale totals.
        assert!(s.contains("TB"));
    }
}
