//! Figures 10, 11 and 12(b) — the headline throughput comparisons.

use crate::{
    norm_cell, run_deepspeed_autobatch, run_flex_dram_autobatch, run_flex_jbof, run_flex_ssd,
    run_hilos,
};
use hilos_llm::presets;
use hilos_metrics::Table;

/// Figure 10: normalized decoding throughput of all seven systems across
/// model sizes and context lengths (bs=16).
pub fn fig10() -> String {
    let mut out = String::from("Figure 10 — decoding throughput normalized to FLEX(SSD), bs=16\n");
    let mut t = Table::new(vec![
        "model",
        "ctx",
        "FLEX(SSD)",
        "FLEX(16SSD)",
        "DS+UVM",
        "FLEX(DRAM)",
        "HILOS(4)",
        "HILOS(8)",
        "HILOS(16)",
        "FLEX(SSD) tok/s",
    ]);
    for model in [presets::opt_30b(), presets::opt_66b(), presets::opt_175b()] {
        for s in [32 * 1024u64, 64 * 1024, 128 * 1024] {
            let base = run_flex_ssd(&model, 16, s).map(|r| r.tokens_per_second());
            let Ok(base_tps) = base else {
                t.row(vec![model.name().into(), format!("{}K", s / 1024), "-".into()]);
                continue;
            };
            let norm = |tps: Option<f64>| norm_cell(tps.map(|v| v / base_tps));
            let jbof = run_flex_jbof(&model, 16, s).ok().map(|r| r.tokens_per_second());
            let ds =
                run_deepspeed_autobatch(&model, 16, s).ok().map(|(_, r)| r.tokens_per_second());
            let dram =
                run_flex_dram_autobatch(&model, 16, s).ok().map(|(_, r)| r.tokens_per_second());
            let h = |n: usize| run_hilos(n, &model, 16, s).ok().map(|r| r.tokens_per_second());
            t.row(vec![
                model.name().into(),
                format!("{}K", s / 1024),
                "1.00x".into(),
                norm(jbof),
                norm(ds),
                norm(dram),
                norm(h(4)),
                norm(h(8)),
                norm(h(16)),
                format!("{base_tps:.4}"),
            ]);
        }
    }
    out.push_str(&t.to_string());
    out
}

/// Figure 11: batch-size sensitivity on OPT-66B, with the per-layer
/// execution breakdown of Fig. 11(b).
pub fn fig11() -> String {
    let model = presets::opt_66b();
    let mut out = String::from("Figure 11(a) — decoding throughput (token/s), OPT-66B\n");
    let mut t = Table::new(vec!["ctx", "bs", "FLEX(SSD)", "FLEX(DRAM)", "HILOS(4)", "HILOS(16)"]);
    for s in [32 * 1024u64, 64 * 1024] {
        for bs in [1u32, 2, 4, 8, 16] {
            let flex = run_flex_ssd(&model, bs, s).map(|r| r.tokens_per_second());
            let dram = run_flex_dram_autobatch(&model, bs, s).and_then(|(used, r)| {
                if used == bs {
                    Ok(r.tokens_per_second())
                } else {
                    Err(hilos_baselines::BaselineError::HostOom { needed: 0, available: 0 })
                }
            });
            let h4 = run_hilos(4, &model, bs, s).map(|r| r.tokens_per_second());
            let h16 = run_hilos(16, &model, bs, s).map(|r| r.tokens_per_second());
            t.row(vec![
                format!("{}K", s / 1024),
                bs.to_string(),
                crate::tps_cell(&flex),
                crate::tps_cell(&dram),
                crate::tps_cell(&h4),
                crate::tps_cell(&h16),
            ]);
        }
    }
    out.push_str(&t.to_string());

    out.push_str("\nFigure 11(b) — per-layer execution breakdown (s=32K)\n");
    let mut t = Table::new(vec!["system", "bs", "loadw%", "loadkv%", "storekv%", "compute%"]);
    for bs in [1u32, 4, 16] {
        if let Ok(r) = run_flex_ssd(&model, bs, 32 * 1024) {
            let total: f64 = r.category_seconds.iter().map(|(_, v)| v).sum();
            let pick = |cats: &[&str]| {
                r.category_seconds
                    .iter()
                    .filter(|(c, _)| cats.contains(&c.as_str()))
                    .map(|(_, v)| v)
                    .sum::<f64>()
                    / total
                    * 100.0
            };
            t.row(vec![
                "FLEX(SSD)".into(),
                bs.to_string(),
                format!("{:.1}", 0.0f64.max(pick(&["loadw"]))),
                format!("{:.1}", 0.0f64.max(pick(&["loadkv", "atnmem"]))),
                format!("{:.1}", 0.0f64.max(pick(&["storekv"]))),
                format!("{:.1}", 0.0f64.max(pick(&["qkv", "atn", "mlp"]))),
            ]);
        }
        if let Ok(r) = run_hilos(16, &model, bs, 32 * 1024) {
            let total: f64 = r.category_seconds.iter().map(|(_, v)| v).sum();
            let pick = |cats: &[&str]| {
                r.category_seconds
                    .iter()
                    .filter(|(c, _)| cats.contains(&c.as_str()))
                    .map(|(_, v)| v)
                    .sum::<f64>()
                    / total
                    * 100.0
            };
            t.row(vec![
                "HILOS(16)".into(),
                bs.to_string(),
                format!("{:.1}", 0.0f64.max(pick(&["loadw"]))),
                format!("{:.1}", 0.0f64.max(pick(&["loadkv", "loadx"]))),
                format!("{:.1}", 0.0f64.max(pick(&["spill", "storekv"]))),
                format!(
                    "{:.1}",
                    0.0f64.max(pick(&["qkv", "atn", "atnx", "regen", "mlp", "partial"]))
                ),
            ]);
        }
    }
    out.push_str(&t.to_string());
    out
}

/// Figure 12(b): model-architecture sensitivity — GQA and MoE models
/// across context lengths.
pub fn fig12b() -> String {
    let mut out = String::from(
        "Figure 12(b) — decoding throughput normalized to FLEX(SSD), GQA/MoE models, bs=16\n",
    );
    let mut t =
        Table::new(vec!["model", "ctx", "FLEX(SSD)", "FLEX(DRAM)", "HILOS(16)", "base tok/s"]);
    for model in [presets::qwen25_32b(), presets::mixtral_8x7b(), presets::glam_143b()] {
        for s in [32 * 1024u64, 64 * 1024, 96 * 1024, 128 * 1024, 192 * 1024] {
            let Ok(base) = run_flex_ssd(&model, 16, s).map(|r| r.tokens_per_second()) else {
                continue;
            };
            let dram =
                run_flex_dram_autobatch(&model, 16, s).ok().map(|(_, r)| r.tokens_per_second());
            let h16 = run_hilos(16, &model, 16, s).ok().map(|r| r.tokens_per_second());
            t.row(vec![
                model.name().into(),
                format!("{}K", s / 1024),
                "1.00x".into(),
                norm_cell(dram.map(|v| v / base)),
                norm_cell(h16.map(|v| v / base)),
                format!("{base:.4}"),
            ]);
        }
    }
    out.push_str(&t.to_string());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_hilos16_wins_at_long_context() {
        let model = presets::opt_66b();
        let base = run_flex_ssd(&model, 16, 128 * 1024).unwrap().tokens_per_second();
        let h16 = run_hilos(16, &model, 16, 128 * 1024).unwrap().tokens_per_second();
        let speedup = h16 / base;
        // Paper: 5.3x-7.8x over FLEX(SSD) for long contexts.
        assert!(speedup > 3.0, "speedup {speedup}");
        assert!(speedup < 15.0, "speedup {speedup} implausible");
    }

    #[test]
    fn fig10_device_scaling_monotone() {
        let model = presets::opt_66b();
        let t4 = run_hilos(4, &model, 16, 64 * 1024).unwrap().tokens_per_second();
        let t8 = run_hilos(8, &model, 16, 64 * 1024).unwrap().tokens_per_second();
        let t16 = run_hilos(16, &model, 16, 64 * 1024).unwrap().tokens_per_second();
        assert!(t4 < t8 && t8 < t16, "{t4} {t8} {t16}");
    }

    #[test]
    fn fig11_dram_ooms_beyond_batch_two() {
        let model = presets::opt_66b();
        let r = run_flex_dram_autobatch(&model, 16, 32 * 1024).unwrap();
        assert_eq!(r.0, 2, "FLEX(DRAM) should cap at batch 2");
    }

    #[test]
    fn fig12b_hilos_beats_baselines_on_gqa_and_moe() {
        for model in [presets::qwen25_32b(), presets::mixtral_8x7b()] {
            let base = run_flex_ssd(&model, 16, 96 * 1024).unwrap().tokens_per_second();
            let h16 = run_hilos(16, &model, 16, 96 * 1024).unwrap().tokens_per_second();
            assert!(h16 > base, "{}: hilos {h16} vs flex {base}", model.name());
        }
    }
}
