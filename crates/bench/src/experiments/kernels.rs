//! Table 3, Figure 12(a) and the §5.1 estimator validation.

use hilos_accel::{estimator_correlation, AccelTimingModel, ResourceModel};
use hilos_metrics::Table;
use hilos_storage::SsdSpec;

/// Table 3: FPGA resource utilization, achieved performance and power for
/// the three kernel configurations, model vs paper.
pub fn table3() -> String {
    let paper: [(u32, [f64; 5], f64, f64); 3] = [
        (1, [38.76, 28.57, 51.02, 9.38, 10.06], 11.9, 11.25),
        (4, [56.60, 39.70, 59.30, 9.38, 20.27], 46.8, 15.39),
        (5, [67.40, 46.15, 58.49, 9.38, 27.79], 56.3, 16.08),
    ];
    let model = ResourceModel::smartssd();
    let mut out = String::from("Table 3 — resource utilization and achieved performance\n");
    let mut t = Table::new(vec![
        "d_group", "LUT%", "FF%", "BRAM%", "URAM%", "DSP%", "GFLOPS", "Power(W)", "source",
    ]);
    for (d, util, gflops, power) in paper {
        let r = model.report(d).unwrap();
        let timing = AccelTimingModel::smartssd(d);
        t.row(vec![
            d.to_string(),
            format!("{:.2}", r.utilization[0] * 100.0),
            format!("{:.2}", r.utilization[1] * 100.0),
            format!("{:.2}", r.utilization[2] * 100.0),
            format!("{:.2}", r.utilization[3] * 100.0),
            format!("{:.2}", r.utilization[4] * 100.0),
            format!("{:.1}", timing.sustained_gflops(128)),
            format!("{:.2}", r.power_watts),
            "model".into(),
        ]);
        t.row(vec![
            d.to_string(),
            format!("{:.2}", util[0]),
            format!("{:.2}", util[1]),
            format!("{:.2}", util[2]),
            format!("{:.2}", util[3]),
            format!("{:.2}", util[4]),
            format!("{gflops:.1}"),
            format!("{power:.2}"),
            "paper".into(),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str(&format!(
        "clock: {:.2} MHz (paper: 296.05 MHz); 16-device power: {:.0} W (paper: ~258 W)\n",
        model.report(5).unwrap().freq_hz / 1e6,
        16.0 * model.report(5).unwrap().power_watts,
    ));
    out
}

/// Figure 12(a): kernel microbenchmark — KV drain throughput of the three
/// kernels against the SSD's internal read feed.
pub fn fig12a() -> String {
    let mut out = String::from("Figure 12(a) — kernel microbenchmark (GB/s of KV data)\n");
    let mut t = Table::new(vec!["kernel", "GB/s", "vs SSD P2P read"]);
    let ssd = SsdSpec::smartssd_nvme().seq_read_bw();
    t.row(vec!["SSD P2P read".into(), format!("{:.2}", ssd / 1e9), "1.00x".into()]);
    for (name, d) in [("MHA (d_group=1)", 1u32), ("GQA (d_group=4)", 4), ("GQA (d_group=5)", 5)] {
        let bw = AccelTimingModel::smartssd(d).kv_bytes_per_sec(128);
        t.row(vec![name.into(), format!("{:.2}", bw / 1e9), format!("{:.2}x", bw / ssd)]);
    }
    out.push_str(&t.to_string());
    out.push_str("(all kernels exceed the SSD feed: attention stays storage-bound)\n");
    out
}

/// §5.1: Pearson correlation between the HLS-style estimator and the
/// calibrated timing model across 4K-32K contexts and three kernels.
pub fn estimator() -> String {
    let (r, samples) = estimator_correlation();
    let mut out = String::from("§5.1 — performance estimator validation\n");
    let mut t = Table::new(vec!["d_group", "ctx", "estimator 1/s", "model 1/s"]);
    for (d, s, est, modeled) in &samples {
        t.row(vec![
            d.to_string(),
            format!("{}K", s / 1024),
            format!("{est:.2}"),
            format!("{modeled:.2}"),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str(&format!("Pearson r = {r:.3} (paper: 0.93)\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_prints_model_and_paper_rows() {
        let s = table3();
        assert!(s.contains("model"));
        assert!(s.contains("paper"));
        assert!(s.contains("296.05"));
    }

    #[test]
    fn fig12a_kernels_beat_ssd() {
        let s = fig12a();
        assert!(s.contains("storage-bound"));
    }

    #[test]
    fn estimator_correlation_high() {
        let s = estimator();
        assert!(s.contains("Pearson r = 0.9") || s.contains("Pearson r = 1.0"), "{s}");
    }
}
