//! Experiment implementations, one per table/figure.

mod ans;
mod cost_energy;
mod discussion;
mod extensions;
mod kernels;
mod motivation;
mod schedule;
mod sensitivity;
mod throughput;

pub use ans::fig4;
pub use cost_energy::{fig16a, fig16b, fig17a, fig17b};
pub use discussion::{fig18ab, fig18c};
pub use extensions::{ablations, straggler};
pub use kernels::{estimator, fig12a, table3};
pub use motivation::fig2;
pub use schedule::schedule;
pub use sensitivity::{fig13, fig14, fig15};
pub use throughput::{fig10, fig11, fig12b};

/// All experiment ids, in paper order.
pub const ALL: [&str; 16] = [
    "fig2",
    "fig4",
    "table3",
    "estimator",
    "fig10",
    "fig11",
    "fig12a",
    "fig12b",
    "fig13",
    "fig14",
    "fig15",
    "fig16a",
    "fig16b",
    "fig17a",
    "fig17b",
    "fig18c",
];

/// Runs one experiment by id (also accepts `fig12` and `fig18ab`).
///
/// Returns `None` for an unknown id.
pub fn run(id: &str) -> Option<String> {
    let out = match id {
        "fig2" => fig2(),
        "fig4" => fig4(),
        "table3" => table3(),
        "estimator" => estimator(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "fig12a" => fig12a(),
        "fig12b" => fig12b(),
        "fig12" => format!("{}\n{}", fig12a(), fig12b()),
        "fig13" => fig13(),
        "fig14" => fig14(),
        "fig15" => fig15(),
        "fig16a" => fig16a(),
        "fig16b" => fig16b(),
        "fig17a" => fig17a(),
        "fig17b" => fig17b(),
        "fig18ab" => fig18ab(),
        "fig18c" => fig18c(),
        "ablations" => ablations(),
        "straggler" => straggler(),
        "schedule" => schedule(),
        _ => return None,
    };
    Some(out)
}
