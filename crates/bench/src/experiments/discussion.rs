//! Figure 18 — ISP applicability (§7.1) and the accuracy comparison.

use crate::{run_hilos_config, SIM_LAYERS};
use hilos_baselines::{accuracy_comparison, DEFAULT_KEEP_FRACTION};
use hilos_core::{HilosConfig, HilosSystem};
use hilos_llm::presets;
use hilos_metrics::Table;
use hilos_platform::SystemSpec;

/// Figure 18(a)(b): the envisioned single ISP-CSD against four SmartSSDs —
/// bandwidth-matched designs should deliver comparable throughput.
pub fn fig18ab() -> String {
    let mut out = String::from("Figure 18(a/b) — 1 ISP-CSD vs 4 SmartSSDs (OPT-66B, bs=16)\n");
    let mut t = Table::new(vec!["ctx", "4x SmartSSD tok/s", "1x ISP-CSD tok/s", "ratio"]);
    let model = presets::opt_66b();
    for s in [16 * 1024u64, 32 * 1024] {
        let four =
            run_hilos_config(&SystemSpec::a100_smartssd(4), &model, &HilosConfig::new(4), 16, s)
                .map(|r| r.tokens_per_second())
                .unwrap_or(f64::NAN);
        let isp = HilosSystem::new(&SystemSpec::a100_isp(1), &model, &HilosConfig::new(1))
            .unwrap()
            .with_sim_layers(SIM_LAYERS)
            .run_decode(16, s, 8)
            .map(|r| r.tokens_per_second())
            .unwrap_or(f64::NAN);
        t.row(vec![
            format!("{}K", s / 1024),
            format!("{four:.4}"),
            format!("{isp:.4}"),
            format!("{:.2}x", isp / four),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str("(§7.1: the single PCIe 4.0 ISP unit closely matches four SmartSSDs)\n");
    out
}

/// Figure 18(c): F1 on synthetic LongBench-like retrieval tasks —
/// FlashAttention vs InstAttention (1/8 lossy) vs HILOS.
pub fn fig18c() -> String {
    let mut out = String::from(
        "Figure 18(c) — F1 on synthetic long-context retrieval (LongBench stand-in)\n",
    );
    let mut t = Table::new(vec!["ctx", "FlashAttention", "InstAttention(1/8)", "HILOS", "gap(pp)"]);
    for ctx in [4096usize, 8192] {
        let cmp = accuracy_comparison(ctx, 10, DEFAULT_KEEP_FRACTION).unwrap();
        t.row(vec![
            format!("{}K", ctx / 1024),
            format!("{:.1}", cmp.flash_f1 * 100.0),
            format!("{:.1}", cmp.instattention_f1 * 100.0),
            format!("{:.1}", cmp.hilos_f1 * 100.0),
            format!("{:.1}", cmp.lossy_gap_points()),
        ]);
    }
    out.push_str(&t.to_string());
    out.push_str(
        "(paper: InstAttention's 1/8 compression costs 3.52-5.73 pp F1; HILOS is lossless)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig18ab_isp_close_to_four_smartssds() {
        let s = fig18ab();
        assert!(s.contains("ISP-CSD"));
    }

    #[test]
    fn fig18c_hilos_lossless() {
        let cmp = accuracy_comparison(4096, 6, DEFAULT_KEEP_FRACTION).unwrap();
        assert!((cmp.hilos_f1 - cmp.flash_f1).abs() < 0.03);
        assert!(cmp.instattention_f1 < cmp.flash_f1);
    }
}
