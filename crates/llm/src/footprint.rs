//! Memory-footprint accounting (Fig. 2a of the paper).

use crate::config::ModelConfig;
use crate::workload::BatchSpec;

/// Memory footprint breakdown of one inference job, in bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Footprint {
    /// Model weights.
    pub weights: u64,
    /// KV cache at the *end* of generation (worst case).
    pub kv_cache: u64,
    /// Activations, workspace and framework overhead ("Others" in Fig. 2a).
    pub others: u64,
}

impl Footprint {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.weights + self.kv_cache + self.others
    }

    /// Fraction of the total occupied by the KV cache.
    pub fn kv_fraction(&self) -> f64 {
        self.kv_cache as f64 / self.total() as f64
    }
}

/// Computes the footprint of running `spec` on `model`.
///
/// "Others" covers per-token activations for the live batch (a few hidden
/// vectors per layer boundary) plus a fixed framework workspace,
/// matching the small residual slice of Fig. 2a.
pub fn footprint(model: &ModelConfig, spec: &BatchSpec) -> Footprint {
    let weights = model.weight_bytes();
    let max_ctx = spec.context_len + spec.output_len;
    let kv_cache = model.kv_bytes_per_token() * spec.batch as u64 * max_ctx;
    // Activations: pinned I/O buffers of ~4 hidden vectors per layer per
    // sequence plus one logits buffer, and a 2 GiB framework workspace.
    let act = 4 * model.layers() as u64 * model.hidden() as u64 * 2 * spec.batch as u64
        + spec.batch as u64 * 50_272 * 2;
    let others = act + (2u64 << 30);
    Footprint { weights, kv_cache, others }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::presets;

    #[test]
    fn fig2a_kv_dominates_at_long_context() {
        let m = presets::opt_175b();
        // bs=16, s=128K: KV cache dwarfs the 350 GB of weights.
        let fp = footprint(&m, &BatchSpec::new(16, 128 * 1024, 64));
        assert!(fp.kv_fraction() > 0.9, "kv fraction {}", fp.kv_fraction());
        assert!(fp.total() > 5_000_000_000_000, "total {} should be TB-scale", fp.total());
    }

    #[test]
    fn fig2a_weights_dominate_at_small_batch_short_context() {
        let m = presets::opt_175b();
        let fp = footprint(&m, &BatchSpec::new(1, 8 * 1024, 64));
        assert!(fp.weights > fp.kv_cache, "weights {} kv {}", fp.weights, fp.kv_cache);
    }

    #[test]
    fn kv_scales_linearly_with_batch_and_context() {
        let m = presets::opt_66b();
        let a = footprint(&m, &BatchSpec::new(4, 32 * 1024, 64)).kv_cache;
        let b = footprint(&m, &BatchSpec::new(8, 32 * 1024, 64)).kv_cache;
        assert_eq!(b, 2 * a);
        let c = footprint(&m, &BatchSpec::new(4, 64 * 1024, 128)).kv_cache;
        assert!(c > 19 * a / 10);
    }

    #[test]
    fn exceeds_host_dram_as_motivation_claims() {
        // §3.1: footprints reach TB scale, beyond the 512 GB host.
        let host = 512u64 << 30;
        let m = presets::opt_175b();
        for (bs, s) in [(4, 32 * 1024u64), (16, 32 * 1024), (16, 128 * 1024)] {
            let fp = footprint(&m, &BatchSpec::new(bs, s, 64));
            assert!(fp.total() > host, "bs={bs} s={s}");
        }
    }
}
