//! Transformer model configurations (Table 2 of the paper) and the
//! size/FLOP arithmetic every scheduler relies on.

use std::fmt;

/// Bytes per parameter / element at FP16.
pub const FP16_BYTES: u64 = 2;

/// Mixture-of-Experts configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoeConfig {
    /// Total experts per MoE layer.
    pub experts: u32,
    /// Experts activated per token (2 for Mixtral and GLaM).
    pub active_experts: u32,
    /// A MoE layer every `interval` layers (1 = every layer, 2 = GLaM's
    /// interleaved dense/MoE stack).
    pub interval: u32,
}

/// Feed-forward style: OPT/GLaM use two projection matrices, gated models
/// (Qwen, Mixtral) use three (gate/up/down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MlpKind {
    /// Two matrices: up (h×i) and down (i×h).
    TwoMatrix,
    /// Three matrices: gate, up (h×i) and down (i×h).
    Gated,
}

/// A decoder-only transformer configuration.
///
/// # Examples
///
/// ```
/// use hilos_llm::presets;
///
/// let opt175 = presets::opt_175b();
/// // ~175 billion parameters.
/// let params = opt175.weight_bytes() / 2;
/// assert!((170e9..180e9).contains(&(params as f64)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    name: String,
    layers: u32,
    hidden: u32,
    intermediate: u32,
    heads: u32,
    kv_heads: u32,
    vocab: u32,
    mlp_kind: MlpKind,
    moe: Option<MoeConfig>,
}

impl ModelConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `heads` is not divisible by `kv_heads` or `hidden` by
    /// `heads`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        layers: u32,
        hidden: u32,
        intermediate: u32,
        heads: u32,
        kv_heads: u32,
        vocab: u32,
        mlp_kind: MlpKind,
        moe: Option<MoeConfig>,
    ) -> Self {
        assert!(heads > 0 && kv_heads > 0, "head counts must be positive");
        assert_eq!(heads % kv_heads, 0, "heads must be divisible by kv_heads");
        assert_eq!(hidden % heads, 0, "hidden must be divisible by heads");
        ModelConfig {
            name: name.into(),
            layers,
            hidden,
            intermediate,
            heads,
            kv_heads,
            vocab,
            mlp_kind,
            moe,
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Transformer layer count.
    pub fn layers(&self) -> u32 {
        self.layers
    }

    /// Hidden dimension.
    pub fn hidden(&self) -> u32 {
        self.hidden
    }

    /// Feed-forward intermediate dimension.
    pub fn intermediate(&self) -> u32 {
        self.intermediate
    }

    /// Query head count.
    pub fn heads(&self) -> u32 {
        self.heads
    }

    /// KV head count (equal to `heads` for MHA).
    pub fn kv_heads(&self) -> u32 {
        self.kv_heads
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> u32 {
        self.hidden / self.heads
    }

    /// Query-group size `d_group = heads / kv_heads` (Table 2).
    pub fn d_group(&self) -> u32 {
        self.heads / self.kv_heads
    }

    /// MoE configuration, if any.
    pub fn moe(&self) -> Option<MoeConfig> {
        self.moe
    }

    /// True if this model uses grouped-query attention.
    pub fn is_gqa(&self) -> bool {
        self.kv_heads < self.heads
    }

    /// KV projection width: `kv_heads × head_dim`.
    pub fn kv_dim(&self) -> u32 {
        self.kv_heads * self.head_dim()
    }

    fn mlp_matrices(&self) -> u64 {
        match self.mlp_kind {
            MlpKind::TwoMatrix => 2,
            MlpKind::Gated => 3,
        }
    }

    /// Number of layers carrying an MoE feed-forward block.
    pub fn moe_layers(&self) -> u32 {
        match self.moe {
            Some(m) => self.layers / m.interval,
            None => 0,
        }
    }

    /// Attention weight bytes per layer (`W_Q`, `W_K`, `W_V`, `W_O`).
    pub fn attn_weight_bytes_per_layer(&self) -> u64 {
        let h = self.hidden as u64;
        let kv = self.kv_dim() as u64;
        (h * h + 2 * h * kv + h * h) * FP16_BYTES
    }

    /// Feed-forward weight bytes per layer: the dense matrices for dense
    /// layers, all experts (plus router) for MoE layers.
    pub fn mlp_weight_bytes_per_layer(&self, layer: u32) -> u64 {
        let h = self.hidden as u64;
        let i = self.intermediate as u64;
        let dense = self.mlp_matrices() * h * i * FP16_BYTES;
        match self.moe {
            Some(m) if layer.is_multiple_of(m.interval) => {
                let router = h * m.experts as u64 * FP16_BYTES;
                m.experts as u64 * dense + router
            }
            _ => dense,
        }
    }

    /// Total model weight bytes (FP16), including embeddings.
    pub fn weight_bytes(&self) -> u64 {
        let embed = self.vocab as u64 * self.hidden as u64 * FP16_BYTES;
        let layers: u64 = (0..self.layers)
            .map(|l| self.attn_weight_bytes_per_layer() + self.mlp_weight_bytes_per_layer(l))
            .sum();
        embed + layers
    }

    /// KV-cache bytes per token across all layers (K + V, FP16).
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.layers as u64 * self.kv_dim() as u64 * FP16_BYTES
    }

    /// X-cache bytes per token across all layers: the pre-projection
    /// activation `X` is `hidden`-wide per layer (§4.2).
    pub fn x_bytes_per_token(&self) -> u64 {
        self.layers as u64 * self.hidden as u64 * FP16_BYTES
    }

    /// Size ratio X-cache / KV-cache: 0.5 for MHA (the paper's "half the
    /// storage"), but above 1 for aggressive GQA, where X-cache stops
    /// paying off.
    pub fn x_to_kv_ratio(&self) -> f64 {
        self.x_bytes_per_token() as f64 / self.kv_bytes_per_token() as f64
    }

    /// Expected number of *distinct* experts hit by a batch of `batch`
    /// tokens on a MoE layer (each token picks `active_experts`). Dense
    /// models return 1.0 meaning "the one FFN".
    pub fn expected_loaded_experts(&self, batch: u32) -> f64 {
        match self.moe {
            None => 1.0,
            Some(m) => {
                let e = m.experts as f64;
                let draws = (batch * m.active_experts) as f64;
                e * (1.0 - (1.0 - 1.0 / e).powf(draws))
            }
        }
    }

    /// Weight bytes that must reach the GPU for one decoding step of a
    /// whole batch (attention weights + the experts actually activated).
    pub fn decode_weight_traffic_bytes(&self, batch: u32) -> u64 {
        let h = self.hidden as u64;
        let i = self.intermediate as u64;
        let dense = self.mlp_matrices() * h * i * FP16_BYTES;
        let mut total = 0u64;
        for l in 0..self.layers {
            total += self.attn_weight_bytes_per_layer();
            total += match self.moe {
                Some(m) if l % m.interval == 0 => {
                    let loaded = self.expected_loaded_experts(batch).min(m.experts as f64);
                    (loaded * dense as f64) as u64 + h * m.experts as u64 * FP16_BYTES
                }
                _ => dense,
            };
        }
        total
    }

    /// FLOPs of the QKV projection for one token, one layer.
    pub fn qkv_flops_per_token_layer(&self) -> f64 {
        let h = self.hidden as f64;
        let kv = self.kv_dim() as f64;
        2.0 * h * (h + 2.0 * kv)
    }

    /// FLOPs of the attention (QKᵀ + SV over an `s`-token context) for one
    /// token, one layer, all heads.
    pub fn attn_flops_per_token_layer(&self, s: u64) -> f64 {
        4.0 * s as f64 * self.hidden as f64
    }

    /// FLOPs of the output projection + feed-forward for one token, one
    /// layer (active experts only for MoE).
    pub fn mlp_flops_per_token_layer(&self, layer: u32) -> f64 {
        let h = self.hidden as f64;
        let i = self.intermediate as f64;
        let proj_o = 2.0 * h * h;
        let dense = 2.0 * self.mlp_matrices() as f64 * h * i;
        match self.moe {
            Some(m) if layer.is_multiple_of(m.interval) => proj_o + m.active_experts as f64 * dense,
            _ => proj_o + dense,
        }
    }

    /// Total decode FLOPs per token over the whole model at context `s`
    /// (QKV + attention + MLP, all layers).
    pub fn decode_flops_per_token(&self, s: u64) -> f64 {
        (0..self.layers)
            .map(|l| {
                self.qkv_flops_per_token_layer()
                    + self.attn_flops_per_token_layer(s)
                    + self.mlp_flops_per_token_layer(l)
            })
            .sum()
    }

    /// Prefill FLOPs for an `s`-token prompt (causal attention ≈ s²·h per
    /// layer plus the projections for every token).
    pub fn prefill_flops(&self, s: u64) -> f64 {
        let s_f = s as f64;
        (0..self.layers)
            .map(|l| {
                s_f * (self.qkv_flops_per_token_layer() + self.mlp_flops_per_token_layer(l))
                    + 2.0 * s_f * s_f * self.hidden as f64
            })
            .sum()
    }
}

impl fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (L={} h={} heads={}/{} d_group={})",
            self.name,
            self.layers,
            self.hidden,
            self.heads,
            self.kv_heads,
            self.d_group()
        )
    }
}

/// The models of Table 2.
pub mod presets {
    use super::{MlpKind, ModelConfig, MoeConfig};

    /// OPT-30B: 48 layers, 7168 hidden, MHA.
    pub fn opt_30b() -> ModelConfig {
        ModelConfig::new("OPT-30B", 48, 7168, 28672, 64, 64, 50272, MlpKind::TwoMatrix, None)
    }

    /// OPT-66B: 64 layers, 9216 hidden, MHA.
    pub fn opt_66b() -> ModelConfig {
        ModelConfig::new("OPT-66B", 64, 9216, 36864, 72, 72, 50272, MlpKind::TwoMatrix, None)
    }

    /// OPT-175B: 96 layers, 12288 hidden, MHA — the headline model.
    pub fn opt_175b() -> ModelConfig {
        ModelConfig::new("OPT-175B", 96, 12288, 49152, 96, 96, 50272, MlpKind::TwoMatrix, None)
    }

    /// Qwen2.5-32B: dense + GQA (d_group = 5).
    pub fn qwen25_32b() -> ModelConfig {
        ModelConfig::new("Qwen2.5-32B", 64, 5120, 27648, 40, 8, 152064, MlpKind::Gated, None)
    }

    /// Mixtral-8×7B: MoE (8 experts, 2 active) + GQA (d_group = 4).
    pub fn mixtral_8x7b() -> ModelConfig {
        ModelConfig::new(
            "Mixtral-8x7B",
            32,
            4096,
            14336,
            32,
            8,
            32000,
            MlpKind::Gated,
            Some(MoeConfig { experts: 8, active_experts: 2, interval: 1 }),
        )
    }

    /// GLaM-143B: MoE (64 experts, 2 active, every other layer) + MHA.
    pub fn glam_143b() -> ModelConfig {
        ModelConfig::new(
            "GLaM-143B",
            32,
            4096,
            16384,
            32,
            32,
            50272,
            MlpKind::TwoMatrix,
            Some(MoeConfig { experts: 64, active_experts: 2, interval: 2 }),
        )
    }

    /// All Table 2 models in paper order.
    pub fn all() -> Vec<ModelConfig> {
        vec![opt_30b(), opt_66b(), opt_175b(), qwen25_32b(), mixtral_8x7b(), glam_143b()]
    }
}

#[cfg(test)]
mod tests {
    use super::presets::*;
    use super::*;

    #[test]
    fn parameter_counts_match_names() {
        let cases: [(ModelConfig, f64); 5] = [
            (opt_30b(), 30e9),
            (opt_66b(), 66e9),
            (opt_175b(), 175e9),
            (qwen25_32b(), 32e9),
            (mixtral_8x7b(), 47e9),
        ];
        for (m, expect) in cases {
            let params = (m.weight_bytes() / FP16_BYTES) as f64;
            let rel = (params - expect).abs() / expect;
            assert!(rel < 0.12, "{}: {params:.3e} vs {expect:.1e}", m.name());
        }
        // GLaM-143B with MoE every other layer.
        let glam = glam_143b();
        let params = (glam.weight_bytes() / FP16_BYTES) as f64;
        assert!((130e9..155e9).contains(&params), "GLaM params {params:.3e}");
    }

    #[test]
    fn d_group_matches_table2() {
        assert_eq!(opt_30b().d_group(), 1);
        assert_eq!(opt_175b().d_group(), 1);
        assert_eq!(qwen25_32b().d_group(), 5);
        assert_eq!(mixtral_8x7b().d_group(), 4);
        assert_eq!(glam_143b().d_group(), 1);
    }

    #[test]
    fn head_dims() {
        assert_eq!(opt_30b().head_dim(), 112);
        assert_eq!(opt_66b().head_dim(), 128);
        assert_eq!(opt_175b().head_dim(), 128);
        assert_eq!(qwen25_32b().head_dim(), 128);
    }

    #[test]
    fn kv_cache_scale_matches_fig2() {
        // Fig 2a: OPT-175B at bs=16, s=128K exceeds several TB.
        let m = opt_175b();
        let kv = m.kv_bytes_per_token() as f64 * 16.0 * 131_072.0;
        assert!(kv > 5e12, "kv={kv:.3e}");
        // Per-token KV: 96 layers * 96 heads * 128 dim * 2 (K+V) * 2 B.
        assert_eq!(m.kv_bytes_per_token(), 96 * 96 * 128 * 2 * 2);
    }

    #[test]
    fn kv_entry_per_head_is_256_bytes() {
        // §4.3: each per-head KV entry (K+V, fp16, d=128) is 256 bytes.
        let m = opt_66b();
        let per_head = 2 * m.head_dim() as u64 * FP16_BYTES;
        assert_eq!(per_head, 512); // K+V together; K alone = 256
    }

    #[test]
    fn x_cache_is_half_of_kv_for_mha() {
        for m in [opt_30b(), opt_66b(), opt_175b(), glam_143b()] {
            assert!((m.x_to_kv_ratio() - 0.5).abs() < 1e-9, "{}", m.name());
        }
        // For strong GQA the X-cache is larger than KV.
        assert!(qwen25_32b().x_to_kv_ratio() > 1.0);
        assert!(mixtral_8x7b().x_to_kv_ratio() > 1.0);
    }

    #[test]
    fn moe_expected_experts() {
        let mix = mixtral_8x7b();
        // bs=1: exactly 2 experts (approximately, by the formula slightly less).
        let one = mix.expected_loaded_experts(1);
        assert!((1.5..=2.0).contains(&one), "{one}");
        // Large batches converge to all experts.
        let many = mix.expected_loaded_experts(64);
        assert!(many > 7.9);
        // Dense model: single FFN.
        assert_eq!(opt_30b().expected_loaded_experts(16), 1.0);
    }

    #[test]
    fn decode_weight_traffic_below_full_weights_for_moe() {
        let glam = glam_143b();
        let traffic = glam.decode_weight_traffic_bytes(1) as f64;
        let full = glam.weight_bytes() as f64;
        assert!(traffic < 0.5 * full, "traffic {traffic:.3e} vs full {full:.3e}");
        // Dense model: traffic ~ all layer weights (no embedding).
        let opt = opt_66b();
        let t = opt.decode_weight_traffic_bytes(16) as f64;
        let f = opt.weight_bytes() as f64;
        assert!(t > 0.95 * f * 0.95 && t < f);
    }

    #[test]
    fn flops_orders_of_magnitude() {
        let m = opt_175b();
        // ~2 * 175e9 params FLOPs per token at short context.
        let f = m.decode_flops_per_token(1);
        assert!((2.0e11..6.0e11).contains(&f), "f={f:.3e}");
        // At 128K context attention dominates.
        let f_long = m.decode_flops_per_token(131_072);
        assert!(f_long > 2.0 * f);
        // Prefill scales superlinearly.
        let p8 = m.prefill_flops(8192);
        let p16 = m.prefill_flops(16384);
        assert!(p16 / p8 > 2.0);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn invalid_head_split_rejected() {
        let _ = ModelConfig::new("bad", 2, 100, 400, 7, 2, 1000, MlpKind::TwoMatrix, None);
    }
}
