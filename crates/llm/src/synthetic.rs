//! Synthetic long-context retrieval tasks — the LongBench stand-in for the
//! Fig. 18c accuracy experiment.
//!
//! We cannot run Qwen2.5-32B on LongBench, but what Fig. 18c measures is a
//! property of the *attention retrieval path*: lossless attention (HILOS,
//! FlashAttention) preserves every answer-bearing token's contribution,
//! while InstAttention's 1/8 lossy top-k retrieval drops some of them.
//! This module builds controlled tasks with that exact structure:
//!
//! * a context of `context_len` tokens whose keys are random distractors,
//! * `n_answers` *needle* groups; each needle key is query-aligned with a
//!   strength drawn near the lossy-retrieval cutoff, and its value encodes
//!   an answer id from a small vocabulary,
//! * decoding = nearest-vocabulary readout of the attention output;
//!   F1 compares the decoded answer set against the planted one.
//!
//! The absolute F1 is not comparable to LongBench; the *gap* between
//! lossless and 1/8-lossy retrieval is the reproduced quantity.

use hilos_accel::{MatrixF16, MatrixF32};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of one synthetic retrieval task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrievalTaskConfig {
    /// Context length in tokens.
    pub context_len: usize,
    /// Head dimension.
    pub head_dim: usize,
    /// Number of planted answers.
    pub n_answers: usize,
    /// Needles (key copies) per answer.
    pub needles_per_answer: usize,
    /// Vocabulary size the decoder chooses from (≥ `n_answers`).
    pub vocab_size: usize,
    /// Needle/query alignment range: uniform in `[lo, hi]`, in units of
    /// the distractor score scale. Values near the top-k cutoff make the
    /// task sensitive to lossy retrieval.
    pub needle_strength: (f32, f32),
    /// RNG seed.
    pub seed: u64,
}

impl RetrievalTaskConfig {
    /// A LongBench-flavoured default at the given context length: 16
    /// single-needle answers against a 64-word vocabulary, with needle
    /// strengths tight enough that every answer is decodable from exact
    /// attention yet close enough to the lossy-retrieval cutoff that a
    /// noisy 1/8 top-k drops a few — the Fig. 18c regime. Exact-attention
    /// F1 lands near 0.6, matching LongBench's typical F1 range.
    pub fn longbench_like(context_len: usize, seed: u64) -> Self {
        RetrievalTaskConfig {
            context_len,
            head_dim: 32,
            n_answers: 16,
            needles_per_answer: 1,
            vocab_size: 64,
            needle_strength: (3.0, 4.0),
            seed,
        }
    }
}

/// A generated retrieval task.
#[derive(Debug, Clone)]
pub struct RetrievalTask {
    /// `1 × d` query.
    pub queries: MatrixF16,
    /// `s × d` keys.
    pub keys: MatrixF16,
    /// `s × d` values.
    pub values: MatrixF16,
    /// Planted answer ids (vocabulary indices), sorted.
    pub answers: Vec<usize>,
    /// `vocab × d` vocabulary embeddings for decoding.
    pub vocab: MatrixF32,
    /// Attention scale to use.
    pub scale: f32,
}

impl RetrievalTask {
    /// Generates a task.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (more answers than
    /// vocabulary entries, or more needles than context).
    pub fn generate(cfg: &RetrievalTaskConfig) -> Self {
        assert!(cfg.n_answers <= cfg.vocab_size, "answers exceed vocabulary");
        let total_needles = cfg.n_answers * cfg.needles_per_answer;
        assert!(total_needles < cfg.context_len, "needles exceed context");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let d = cfg.head_dim;
        let s = cfg.context_len;
        let norm = 1.0 / (d as f32).sqrt();

        let mut gauss = {
            let mut cache: Option<f32> = None;
            move |rng: &mut StdRng| -> f32 {
                if let Some(v) = cache.take() {
                    return v;
                }
                // Box–Muller.
                let u1: f32 = rng.random::<f32>().max(1e-12);
                let u2: f32 = rng.random::<f32>();
                let r = (-2.0 * u1.ln()).sqrt();
                let (s1, c1) = (2.0 * std::f32::consts::PI * u2).sin_cos();
                cache = Some(r * s1);
                r * c1
            }
        };

        // Query: random unit-scale vector.
        let q: Vec<f32> = (0..d).map(|_| gauss(&mut rng) * norm).collect();
        let queries = MatrixF32::from_fn(1, d, |_, c| q[c]).to_f16();

        // Vocabulary embeddings.
        let vocab = MatrixF32::from_fn(cfg.vocab_size, d, |_, _| gauss(&mut rng));

        // Distractor keys/values.
        let mut keys = MatrixF32::from_fn(s, d, |_, _| gauss(&mut rng) * norm);
        let mut values = MatrixF32::from_fn(s, d, |_, _| gauss(&mut rng) * 0.3);

        // Choose answer ids and needle positions.
        let mut answers: Vec<usize> = Vec::new();
        while answers.len() < cfg.n_answers {
            let id = rng.random_range(0..cfg.vocab_size);
            if !answers.contains(&id) {
                answers.push(id);
            }
        }
        let mut positions: Vec<usize> = Vec::new();
        while positions.len() < total_needles {
            let p = rng.random_range(0..s);
            if !positions.contains(&p) {
                positions.push(p);
            }
        }

        // Plant needles: key = strength·q + small noise; value = vocab row.
        let q_norm_sq: f32 = q.iter().map(|v| v * v).sum();
        for (i, &pos) in positions.iter().enumerate() {
            let answer = answers[i % cfg.n_answers];
            let strength = cfg.needle_strength.0
                + rng.random::<f32>() * (cfg.needle_strength.1 - cfg.needle_strength.0);
            let a = strength / q_norm_sq.max(1e-9);
            for (c, &qc) in q.iter().enumerate() {
                keys.set(pos, c, a * qc + gauss(&mut rng) * norm * 0.05);
                values.set(pos, c, vocab.at(answer, c));
            }
        }

        answers.sort_unstable();
        RetrievalTask {
            queries,
            keys: keys.to_f16(),
            values: values.to_f16(),
            answers,
            vocab,
            scale: 1.5,
        }
    }

    /// Decodes an attention output into a predicted answer set: the
    /// `n_answers` vocabulary rows most similar to the output vector.
    pub fn decode(&self, out: &MatrixF32) -> Vec<usize> {
        let d = self.vocab.cols();
        assert_eq!(out.cols(), d, "output dim mismatch");
        let o = out.row(0);
        let mut scored: Vec<(usize, f32)> = (0..self.vocab.rows())
            .map(|i| {
                let v = self.vocab.row(i);
                let dot: f32 = o.iter().zip(v).map(|(&a, &b)| a * b).sum();
                let nrm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
                (i, dot / nrm.max(1e-9))
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut pred: Vec<usize> =
            scored.into_iter().take(self.answers.len()).map(|(i, _)| i).collect();
        pred.sort_unstable();
        pred
    }

    /// F1 score of a predicted answer set against the planted answers.
    pub fn f1(&self, predicted: &[usize]) -> f64 {
        if predicted.is_empty() && self.answers.is_empty() {
            return 1.0;
        }
        if predicted.is_empty() || self.answers.is_empty() {
            return 0.0;
        }
        let hits = predicted.iter().filter(|p| self.answers.contains(p)).count() as f64;
        let precision = hits / predicted.len() as f64;
        let recall = hits / self.answers.len() as f64;
        if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilos_accel::{attention_kernel, sparse_topk_attention, AttentionInputs};

    fn inputs(task: &RetrievalTask) -> AttentionInputs<'_> {
        AttentionInputs {
            queries: &task.queries,
            keys: &task.keys,
            values: &task.values,
            valid: None,
            scale: task.scale,
            host_tail: None,
        }
    }

    #[test]
    fn exact_attention_lands_in_longbench_f1_range() {
        let mut total = 0.0;
        let n = 8;
        for seed in 0..n {
            let task = RetrievalTask::generate(&RetrievalTaskConfig::longbench_like(2048, seed));
            let out = attention_kernel(&inputs(&task)).unwrap();
            total += task.f1(&task.decode(&out));
        }
        let avg = total / n as f64;
        // LongBench F1 scores sit around 0.4–0.7; the task is calibrated
        // into that band (Fig. 18c bars).
        assert!((0.40..0.85).contains(&avg), "exact-attention F1 out of band: {avg}");
    }

    #[test]
    fn lossy_retrieval_loses_accuracy() {
        // The Fig 18c mechanism: 1/8 top-k retrieval with estimation noise
        // drops needles and lowers F1 versus exact attention.
        let mut exact_sum = 0.0;
        let mut lossy_sum = 0.0;
        let n = 12;
        for seed in 0..n {
            let task = RetrievalTask::generate(&RetrievalTaskConfig::longbench_like(2048, seed));
            let inp = inputs(&task);
            let exact = attention_kernel(&inp).unwrap();
            let noise = hilos_accel::EstimationNoise { amplitude: 4.0, seed: seed * 7 + 1 };
            let lossy = sparse_topk_attention(&inp, 1.0 / 8.0, Some(noise)).unwrap();
            exact_sum += task.f1(&task.decode(&exact));
            lossy_sum += task.f1(&task.decode(&lossy));
        }
        let gap = (exact_sum - lossy_sum) / n as f64;
        assert!(gap > 0.01, "expected a lossy accuracy gap, got {gap}");
    }

    #[test]
    fn f1_arithmetic() {
        let task = RetrievalTask::generate(&RetrievalTaskConfig::longbench_like(512, 3));
        // Perfect prediction.
        assert_eq!(task.f1(&task.answers.clone()), 1.0);
        // Empty prediction.
        assert_eq!(task.f1(&[]), 0.0);
        // Half right (first half of answers + junk to keep |pred| equal).
        let mut half: Vec<usize> = task.answers[..task.answers.len() / 2].to_vec();
        while half.len() < task.answers.len() {
            half.push(9999 + half.len());
        }
        let f1 = task.f1(&half);
        assert!((f1 - 0.5).abs() < 1e-9, "f1={f1}");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = RetrievalTaskConfig::longbench_like(1024, 99);
        let a = RetrievalTask::generate(&cfg);
        let b = RetrievalTask::generate(&cfg);
        assert_eq!(a.answers, b.answers);
        assert_eq!(a.keys, b.keys);
    }

    #[test]
    #[should_panic(expected = "answers exceed vocabulary")]
    fn invalid_config_rejected() {
        let mut cfg = RetrievalTaskConfig::longbench_like(1024, 1);
        cfg.n_answers = 100;
        cfg.vocab_size = 10;
        let _ = RetrievalTask::generate(&cfg);
    }
}
