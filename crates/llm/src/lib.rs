//! # hilos-llm — model configurations and workloads
//!
//! The LLM-side substrate of the HILOS reproduction:
//!
//! * [`ModelConfig`] with [`presets`] for every Table 2 model (OPT-30B/66B/
//!   175B, Qwen2.5-32B with GQA, Mixtral-8×7B and GLaM-143B with MoE),
//!   including the weight/KV/X-cache size arithmetic and per-op FLOP
//!   counts the schedulers consume,
//! * [`footprint`] — the Fig. 2a memory-footprint breakdown,
//! * [`BatchSpec`] / [`RequestClass`] — offline batch jobs and the
//!   Azure-derived request classes of the endurance study (Fig. 16b),
//! * [`Request`] / [`TraceConfig`] — request-level workloads: seeded
//!   heterogeneous traces for the continuous-batching serving layer,
//! * [`RetrievalTask`] — synthetic long-context retrieval tasks standing
//!   in for LongBench in the Fig. 18c accuracy experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod footprint;
mod request;
mod synthetic;
mod workload;

pub use config::{presets, MlpKind, ModelConfig, MoeConfig, FP16_BYTES};
pub use footprint::{footprint, Footprint};
pub use request::{
    ArrivalProcess, DeploymentId, Priority, Request, SharedPrefixConfig, Slo, TraceConfig,
    TraceError,
};
pub use synthetic::{RetrievalTask, RetrievalTaskConfig};
pub use workload::{BatchSpec, RequestClass};
