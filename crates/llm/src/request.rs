//! Request-level workloads: individual inference requests and seeded
//! heterogeneous trace generation.
//!
//! [`BatchSpec`](crate::BatchSpec) describes the paper's uniform offline
//! batches; a [`Request`] is one sequence with its own prompt length and
//! output budget, drawn from the Azure-derived [`RequestClass`] mix. A
//! [`TraceConfig`] generates deterministic request streams — the input of
//! the continuous-batching serving layer (`hilos-core::serve`).

use crate::workload::RequestClass;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;

/// One inference request in a serving trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// Unique id (position in the trace).
    pub id: u64,
    /// Serving step at which the request becomes visible to admission.
    pub arrival_step: u64,
    /// Prompt (context) length in tokens.
    pub prompt_len: u64,
    /// Number of tokens to generate.
    pub output_budget: u64,
    /// The class the request was drawn from.
    pub class: RequestClass,
}

impl Request {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `prompt_len` or `output_budget` is zero.
    pub fn new(
        id: u64,
        arrival_step: u64,
        prompt_len: u64,
        output_budget: u64,
        class: RequestClass,
    ) -> Self {
        assert!(prompt_len > 0, "prompt length must be positive");
        assert!(output_budget > 0, "output budget must be positive");
        Request { id, arrival_step, prompt_len, output_budget, class }
    }

    /// Context length after `emitted` generated tokens.
    pub fn context_at(&self, emitted: u64) -> u64 {
        self.prompt_len + emitted
    }

    /// Total tokens whose KV entries the request materializes at
    /// completion (prompt plus full output budget).
    pub fn total_tokens(&self) -> u64 {
        self.prompt_len + self.output_budget
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "req#{} @{} in={} out={} ({})",
            self.id, self.arrival_step, self.prompt_len, self.output_budget, self.class
        )
    }
}

/// Configuration of a seeded heterogeneous request trace.
///
/// # Examples
///
/// ```
/// use hilos_llm::TraceConfig;
///
/// let trace = TraceConfig::azure_mix(100, 7).generate();
/// assert_eq!(trace.len(), 100);
/// // Same seed, same trace — bit for bit.
/// assert_eq!(trace, TraceConfig::azure_mix(100, 7).generate());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Number of requests to generate.
    pub requests: usize,
    /// RNG seed.
    pub seed: u64,
    /// Relative class weights in [`RequestClass::all`] order
    /// (Short, Medium, Long). Zero-weight classes never occur.
    pub class_weights: [u32; 3],
    /// Mean inter-arrival gap in serving steps (arrivals are uniform in
    /// `0..=2·mean`, so bursts of simultaneous arrivals occur). `0` makes
    /// every request arrive at step zero (a closed-loop backlog).
    pub mean_interarrival_steps: u64,
    /// Multiplies every class's prompt length — the knob that stretches
    /// the Azure mix into the paper's long-context regime.
    pub prompt_scale: u64,
    /// Relative jitter applied to prompt and output lengths, `[0, 1)`:
    /// lengths are scaled by a uniform factor in `[1-j, 1+j]`.
    pub length_jitter: f64,
}

impl TraceConfig {
    /// The Azure-derived mix of the paper's Fig. 16b endurance study:
    /// weights 6:3:1 over Short/Medium/Long, unscaled prompts, 25% length
    /// jitter, one arrival every other step on average.
    pub fn azure_mix(requests: usize, seed: u64) -> Self {
        TraceConfig {
            requests,
            seed,
            class_weights: [6, 3, 1],
            mean_interarrival_steps: 2,
            prompt_scale: 1,
            length_jitter: 0.25,
        }
    }

    /// Same mix with prompts stretched by `scale` — the long-context
    /// serving scenario the ANS path is built for.
    pub fn long_context(requests: usize, seed: u64, scale: u64) -> Self {
        let mut c = TraceConfig::azure_mix(requests, seed);
        c.prompt_scale = scale;
        c
    }

    /// Generates the trace: `requests` requests in arrival order,
    /// deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if all class weights are zero or `length_jitter` is not in
    /// `[0, 1)`.
    pub fn generate(&self) -> Vec<Request> {
        assert!(self.class_weights.iter().any(|&w| w > 0), "need a non-zero class weight");
        assert!(
            (0.0..1.0).contains(&self.length_jitter),
            "length jitter must be in [0, 1), got {}",
            self.length_jitter
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let total_weight: u32 = self.class_weights.iter().sum();
        let mut step = 0u64;
        let mut out = Vec::with_capacity(self.requests);
        for id in 0..self.requests as u64 {
            if self.mean_interarrival_steps > 0 {
                step += rng.random_range(0..=2 * self.mean_interarrival_steps);
            }
            let mut pick = rng.random_range(0..total_weight);
            let mut class = RequestClass::Short;
            for (c, &w) in RequestClass::all().iter().zip(&self.class_weights) {
                if pick < w {
                    class = *c;
                    break;
                }
                pick -= w;
            }
            let jitter = |rng: &mut StdRng, base: u64| -> u64 {
                let f = 1.0 + self.length_jitter * (2.0 * rng.random::<f64>() - 1.0);
                ((base as f64 * f) as u64).max(1)
            };
            let prompt = jitter(&mut rng, class.input_tokens() * self.prompt_scale.max(1));
            let output = jitter(&mut rng, class.output_tokens());
            out.push(Request::new(id, step, prompt, output, class));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_accessors() {
        let r = Request::new(3, 10, 1024, 350, RequestClass::Medium);
        assert_eq!(r.context_at(0), 1024);
        assert_eq!(r.context_at(100), 1124);
        assert_eq!(r.total_tokens(), 1374);
        assert!(r.to_string().contains("req#3"));
    }

    #[test]
    #[should_panic(expected = "output budget must be positive")]
    fn zero_output_rejected() {
        let _ = Request::new(0, 0, 16, 0, RequestClass::Short);
    }

    #[test]
    fn traces_are_seed_deterministic() {
        let a = TraceConfig::azure_mix(500, 42).generate();
        let b = TraceConfig::azure_mix(500, 42).generate();
        assert_eq!(a, b);
        let c = TraceConfig::azure_mix(500, 43).generate();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn arrival_steps_are_monotone_and_spread() {
        let trace = TraceConfig::azure_mix(1000, 7).generate();
        assert!(trace.windows(2).all(|w| w[0].arrival_step <= w[1].arrival_step));
        let last = trace.last().unwrap().arrival_step;
        // Mean gap 2 over 1000 requests: expect roughly 2000 steps.
        assert!((1000..4000).contains(&last), "spread {last}");
    }

    #[test]
    fn class_mix_roughly_matches_weights() {
        let trace = TraceConfig::azure_mix(3000, 11).generate();
        let short = trace.iter().filter(|r| r.class == RequestClass::Short).count();
        let long = trace.iter().filter(|r| r.class == RequestClass::Long).count();
        assert!(short > 1500, "short {short}");
        assert!((100..700).contains(&long), "long {long}");
    }

    #[test]
    fn jitter_stays_within_band() {
        let trace = TraceConfig::azure_mix(2000, 5).generate();
        for r in &trace {
            let base = r.class.input_tokens() as f64;
            assert!((r.prompt_len as f64) >= base * 0.74, "{r}");
            assert!((r.prompt_len as f64) <= base * 1.26, "{r}");
        }
    }

    #[test]
    fn long_context_scales_prompts() {
        let trace = TraceConfig::long_context(200, 9, 16).generate();
        let mean = trace.iter().map(|r| r.prompt_len).sum::<u64>() as f64 / trace.len() as f64;
        // Base mix mean ≈ 6/10·256 + 3/10·1024 + 1/10·8192 ≈ 1280 ⇒ ×16.
        assert!(mean > 8.0 * 1280.0, "mean {mean}");
        let zero_gap =
            TraceConfig { mean_interarrival_steps: 0, ..TraceConfig::azure_mix(50, 1) }.generate();
        assert!(zero_gap.iter().all(|r| r.arrival_step == 0));
    }
}
