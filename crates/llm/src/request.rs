//! Request-level workloads: individual inference requests and seeded
//! heterogeneous trace generation.
//!
//! [`BatchSpec`](crate::BatchSpec) describes the paper's uniform offline
//! batches; a [`Request`] is one sequence with its own prompt length,
//! output budget and [`Slo`], drawn from the Azure-derived
//! [`RequestClass`] mix. A [`TraceConfig`] generates deterministic
//! request streams — the input of the continuous-batching serving layer
//! (`hilos-core::serve`). Malformed inputs surface as typed
//! [`TraceError`]s rather than panics, so trace ingestion from untrusted
//! sources stays recoverable.

use crate::workload::RequestClass;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::error::Error;
use std::fmt;

/// Why a request or trace configuration is malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// A request's prompt length was zero.
    ZeroPromptLen {
        /// The offending request id.
        id: u64,
    },
    /// A request's output budget was zero.
    ZeroOutputBudget {
        /// The offending request id.
        id: u64,
    },
    /// A request's SLO deadline was zero.
    ZeroDeadline {
        /// The offending request id.
        id: u64,
    },
    /// Every class weight in a [`TraceConfig`] was zero.
    NoClassWeight,
    /// `length_jitter` fell outside `[0, 1)`; the payload is the raw
    /// `f64` bit pattern ([`f64::to_bits`]), so the error stays `Eq` and
    /// NaN/infinite inputs survive into the message unmangled.
    InvalidJitter(u64),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::ZeroPromptLen { id } => {
                write!(f, "request {id}: prompt length must be positive")
            }
            TraceError::ZeroOutputBudget { id } => {
                write!(f, "request {id}: output budget must be positive")
            }
            TraceError::ZeroDeadline { id } => {
                write!(f, "request {id}: SLO deadline must be positive")
            }
            TraceError::NoClassWeight => write!(f, "trace needs a non-zero class weight"),
            TraceError::InvalidJitter(bits) => {
                write!(f, "length jitter must be in [0, 1), got {}", f64::from_bits(*bits))
            }
        }
    }
}

impl Error for TraceError {}

/// Identity of one deployment in a multi-deployment cluster.
///
/// A single-deployment run is deployment `0` (the [`Default`]); a
/// cluster router stamps the deployment that actually served a request
/// onto its outcome, so per-deployment attribution (who paid which tail,
/// which array wore how much) survives aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DeploymentId(pub u32);

impl DeploymentId {
    /// The deployment's index in cluster order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DeploymentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dep{}", self.0)
    }
}

/// Scheduling priority class, ordered `Low < Normal < High`.
///
/// Priority-aware policies (`hilos-core::serve::policy::PriorityPreempt`)
/// admit strictly by class and may preempt lower classes for higher ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Priority {
    /// Best-effort background work (long analytical jobs).
    Low,
    /// Regular offline traffic.
    Normal,
    /// Latency-sensitive traffic that may preempt lower classes.
    High,
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Priority::Low => write!(f, "low"),
            Priority::Normal => write!(f, "normal"),
            Priority::High => write!(f, "high"),
        }
    }
}

/// A request's service-level objective: an end-to-end deadline (relative
/// to arrival) and a scheduling priority.
///
/// The deadline is stored in integral milliseconds so [`Request`] stays
/// `Eq`/`Hash` (traces are used as map keys in memoization layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slo {
    /// End-to-end deadline in milliseconds from arrival.
    pub deadline_ms: u64,
    /// Scheduling class.
    pub priority: Priority,
}

impl Slo {
    /// An SLO with the given deadline (seconds) and priority. The
    /// deadline is rounded to whole milliseconds; any *positive* input
    /// is clamped to at least 1 ms so it cannot silently collapse into
    /// the invalid zero-deadline state [`TraceError::ZeroDeadline`]
    /// exists to reject.
    pub fn new(deadline_s: f64, priority: Priority) -> Self {
        let ms = (deadline_s.max(0.0) * 1e3).round() as u64;
        Slo { deadline_ms: if ms == 0 && deadline_s > 0.0 { 1 } else { ms }, priority }
    }

    /// The deadline in seconds.
    pub fn deadline_s(&self) -> f64 {
        self.deadline_ms as f64 / 1e3
    }

    /// The default per-class SLO: Short requests are the most urgent
    /// (tight deadline, high priority), Medium is regular traffic, Long
    /// is best-effort batch work with a relaxed deadline.
    ///
    /// The absolute scales (15 min / 1 h / 6 h) are calibrated to the
    /// near-storage serving regime, where one decode step of a large
    /// batch costs seconds — an offline-inference deadline is minutes to
    /// hours, not the sub-second TTFTs of GPU-resident chat serving.
    pub fn for_class(class: RequestClass) -> Self {
        match class {
            RequestClass::Short => Slo { deadline_ms: 900_000, priority: Priority::High },
            RequestClass::Medium => Slo { deadline_ms: 3_600_000, priority: Priority::Normal },
            RequestClass::Long => Slo { deadline_ms: 21_600_000, priority: Priority::Low },
        }
    }
}

/// One inference request in a serving trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// Unique id (position in the trace).
    pub id: u64,
    /// Serving step at which the request becomes visible to admission.
    pub arrival_step: u64,
    /// Prompt (context) length in tokens.
    pub prompt_len: u64,
    /// Number of tokens to generate.
    pub output_budget: u64,
    /// The class the request was drawn from.
    pub class: RequestClass,
    /// The request's service-level objective (deadline + priority),
    /// consumed by deadline/priority-aware scheduling policies.
    pub slo: Slo,
    /// Content key of the shared prefix this prompt opens with (`0` =
    /// nothing shared): a hashed identity for a per-class system prompt
    /// or the running conversation of a multi-turn session. A prefix
    /// cache probes this key to skip prefill work.
    pub prefix_key: u64,
    /// How many leading prompt tokens `prefix_key` covers.
    pub prefix_tokens: u64,
    /// Key under which this request's *full* context (prompt + output)
    /// becomes reusable once served (`0` = never reused): the session
    /// identity its follow-up turns probe.
    pub publish_key: u64,
}

impl Request {
    /// Creates a request with the class-default [`Slo`].
    ///
    /// # Errors
    ///
    /// [`TraceError::ZeroPromptLen`] / [`TraceError::ZeroOutputBudget`]
    /// if a length is zero.
    pub fn new(
        id: u64,
        arrival_step: u64,
        prompt_len: u64,
        output_budget: u64,
        class: RequestClass,
    ) -> Result<Self, TraceError> {
        if prompt_len == 0 {
            return Err(TraceError::ZeroPromptLen { id });
        }
        if output_budget == 0 {
            return Err(TraceError::ZeroOutputBudget { id });
        }
        Ok(Request {
            id,
            arrival_step,
            prompt_len,
            output_budget,
            class,
            slo: Slo::for_class(class),
            prefix_key: 0,
            prefix_tokens: 0,
            publish_key: 0,
        })
    }

    /// Stamps the shared-prefix identity: the first `tokens` prompt
    /// tokens are the content keyed by `key`. The token count is clamped
    /// to the prompt length.
    pub fn with_prefix(mut self, key: u64, tokens: u64) -> Self {
        self.prefix_key = key;
        self.prefix_tokens = tokens.min(self.prompt_len);
        self
    }

    /// Stamps the key under which the request's full served context
    /// becomes reusable (its conversation's identity).
    pub fn with_publish_key(mut self, key: u64) -> Self {
        self.publish_key = key;
        self
    }

    /// Replaces the SLO.
    ///
    /// # Errors
    ///
    /// [`TraceError::ZeroDeadline`] if the deadline is zero.
    pub fn with_slo(mut self, slo: Slo) -> Result<Self, TraceError> {
        if slo.deadline_ms == 0 {
            return Err(TraceError::ZeroDeadline { id: self.id });
        }
        self.slo = slo;
        Ok(self)
    }

    /// Context length after `emitted` generated tokens.
    pub fn context_at(&self, emitted: u64) -> u64 {
        self.prompt_len + emitted
    }

    /// Total tokens whose KV entries the request materializes at
    /// completion (prompt plus full output budget).
    pub fn total_tokens(&self) -> u64 {
        self.prompt_len + self.output_budget
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "req#{} @{} in={} out={} ({})",
            self.id, self.arrival_step, self.prompt_len, self.output_budget, self.class
        )
    }
}

/// Seeded shared-prefix structure layered onto a trace: per-class system
/// prompts and multi-turn conversation sessions.
///
/// Applied as a post-pass over the base trace with an *independent* RNG
/// stream, so configs without shared prefixes generate bit-identical
/// traces to older versions. Every request either **opens a session**
/// (its prompt begins with its class's system prompt, keyed per class)
/// or, with probability [`follow_up_fraction`](Self::follow_up_fraction),
/// **continues an open session** of its class: its prompt becomes the
/// conversation so far plus fresh user tokens, and its shared prefix is
/// the predecessor's full served context. Follow-ups arrive later in the
/// trace but not necessarily after the predecessor *finishes* — whether
/// the reused prefix is actually cached by then is the serving layer's
/// problem, exactly as in production.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedPrefixConfig {
    /// Tokens of the per-class system prompt every prompt opens with.
    pub system_prompt_tokens: u64,
    /// Probability, in `[0, 1]`, that an arrival continues an open
    /// session of its class instead of opening a new one.
    pub follow_up_fraction: f64,
    /// Mean fresh user tokens appended per follow-up turn (jittered
    /// uniformly in `1..=2·mean`).
    pub follow_up_tokens: u64,
    /// Maximum turns per session before it closes.
    pub max_turns: u32,
}

impl SharedPrefixConfig {
    /// A chat-shaped default: 512-token system prompts, 60% of arrivals
    /// continue a conversation, ~96 fresh tokens per turn, sessions up
    /// to 8 turns.
    pub fn chat() -> Self {
        SharedPrefixConfig {
            system_prompt_tokens: 512,
            follow_up_fraction: 0.6,
            follow_up_tokens: 96,
            max_turns: 8,
        }
    }
}

/// How a generated trace lays out its arrival steps — the temporal
/// shape autoscaling has to chase.
///
/// The default [`Uniform`](ArrivalProcess::Uniform) process keeps the
/// historical behavior (one uniform draw per arrival off
/// [`TraceConfig::mean_interarrival_steps`]) and leaves every existing
/// trace bit-identical. The non-uniform processes rewrite the arrival
/// steps in a deterministic post-pass driven by an RNG stream
/// independent of the base generation (the seed salted by a fixed
/// constant), so prompt lengths, classes and jitters are untouched —
/// only *when* requests arrive changes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// One uniform inter-arrival draw per request in
    /// `0..=2·mean_interarrival_steps` — the default, bit-identical to
    /// pre-elastic versions of this crate.
    #[default]
    Uniform,
    /// Deterministic flash crowds: the trace splits into `bursts`
    /// equal contiguous groups; inside a group arrivals are packed
    /// tightly (uniform gaps in `0..=2·burst_interarrival_steps`), and
    /// consecutive groups are separated by a fixed calm gap of
    /// `calm_gap_steps`. The sharpest scale-up/scale-down stimulus: load
    /// slams from zero to a whole burst and back.
    FlashCrowd {
        /// Number of flash crowds the trace splits into (min 1).
        bursts: u32,
        /// Mean inter-arrival gap *inside* a burst, in steps.
        burst_interarrival_steps: u64,
        /// Idle steps between consecutive bursts.
        calm_gap_steps: u64,
    },
    /// Sinusoidal (diurnal) rate: the instantaneous mean inter-arrival
    /// gap swings between `peak_interarrival_steps` (fastest, at the
    /// start of each period) and `trough_interarrival_steps` (slowest,
    /// half a period later) following a cosine of period `period_steps`.
    /// The smooth day/night load curve keep-alive predictors are built
    /// for.
    Diurnal {
        /// Steps per full rate cycle (min 1).
        period_steps: u64,
        /// Mean inter-arrival gap at the peak (fastest) point.
        peak_interarrival_steps: u64,
        /// Mean inter-arrival gap at the trough (slowest) point.
        trough_interarrival_steps: u64,
    },
}

/// Configuration of a seeded heterogeneous request trace.
///
/// # Examples
///
/// ```
/// use hilos_llm::TraceConfig;
///
/// let trace = TraceConfig::azure_mix(100, 7).generate().unwrap();
/// assert_eq!(trace.len(), 100);
/// // Same seed, same trace — bit for bit.
/// assert_eq!(trace, TraceConfig::azure_mix(100, 7).generate().unwrap());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Number of requests to generate.
    pub requests: usize,
    /// RNG seed.
    pub seed: u64,
    /// Relative class weights in [`RequestClass::all`] order
    /// (Short, Medium, Long). Zero-weight classes never occur.
    pub class_weights: [u32; 3],
    /// Mean inter-arrival gap in serving steps (arrivals are uniform in
    /// `0..=2·mean`, so bursts of simultaneous arrivals occur). `0` makes
    /// every request arrive at step zero (a closed-loop backlog).
    pub mean_interarrival_steps: u64,
    /// Multiplies every class's prompt length — the knob that stretches
    /// the Azure mix into the paper's long-context regime.
    pub prompt_scale: u64,
    /// Relative jitter applied to prompt and output lengths, `[0, 1)`:
    /// lengths are scaled by a uniform factor in `[1-j, 1+j]`.
    pub length_jitter: f64,
    /// Per-class SLOs stamped onto generated requests, in
    /// [`RequestClass::all`] order. Defaults to [`Slo::for_class`].
    pub class_slos: [Slo; 3],
    /// Shared-prefix structure (system prompts + multi-turn sessions).
    /// `None` (the default) leaves the trace prefix-free and
    /// bit-identical to pre-prefix versions of this crate.
    pub shared_prefix: Option<SharedPrefixConfig>,
    /// Temporal shape of the arrivals. [`ArrivalProcess::Uniform`] (the
    /// default) keeps the historical uniform draws bit-identical; the
    /// bursty/diurnal processes rewrite arrival steps in a seeded
    /// post-pass.
    pub arrival: ArrivalProcess,
}

impl TraceConfig {
    /// The Azure-derived mix of the paper's Fig. 16b endurance study:
    /// weights 6:3:1 over Short/Medium/Long, unscaled prompts, 25% length
    /// jitter, one arrival every other step on average.
    pub fn azure_mix(requests: usize, seed: u64) -> Self {
        TraceConfig {
            requests,
            seed,
            class_weights: [6, 3, 1],
            mean_interarrival_steps: 2,
            prompt_scale: 1,
            length_jitter: 0.25,
            class_slos: [
                Slo::for_class(RequestClass::Short),
                Slo::for_class(RequestClass::Medium),
                Slo::for_class(RequestClass::Long),
            ],
            shared_prefix: None,
            arrival: ArrivalProcess::Uniform,
        }
    }

    /// Same mix with prompts stretched by `scale` — the long-context
    /// serving scenario the ANS path is built for.
    pub fn long_context(requests: usize, seed: u64, scale: u64) -> Self {
        let mut c = TraceConfig::azure_mix(requests, seed);
        c.prompt_scale = scale;
        c
    }

    /// Replaces the per-class SLOs (in [`RequestClass::all`] order).
    pub fn with_class_slos(mut self, slos: [Slo; 3]) -> Self {
        self.class_slos = slos;
        self
    }

    /// Replaces the mean inter-arrival gap — the contention knob: a
    /// larger gap than the deployment's service rate sustains builds a
    /// queue, so admission order (and prefill scheduling) decides who
    /// meets their SLO. `0` makes the whole trace arrive at step zero.
    pub fn with_mean_interarrival(mut self, steps: u64) -> Self {
        self.mean_interarrival_steps = steps;
        self
    }

    /// Layers seeded shared-prefix structure (per-class system prompts +
    /// multi-turn sessions) onto the trace. See [`SharedPrefixConfig`].
    pub fn with_shared_prefix(mut self, shared: SharedPrefixConfig) -> Self {
        self.shared_prefix = Some(shared);
        self
    }

    /// The Azure mix with chat-shaped shared prefixes
    /// ([`SharedPrefixConfig::chat`]) — the canonical trace for measuring
    /// prefix-cache reuse.
    pub fn shared_prefix_mix(requests: usize, seed: u64) -> Self {
        TraceConfig::azure_mix(requests, seed).with_shared_prefix(SharedPrefixConfig::chat())
    }

    /// Replaces the arrival process (see [`ArrivalProcess`]).
    pub fn with_arrival_process(mut self, arrival: ArrivalProcess) -> Self {
        self.arrival = arrival;
        self
    }

    /// The Azure mix arriving as deterministic flash crowds: `bursts`
    /// tight clumps (mean gap 1 step inside a burst) separated by
    /// `calm_gap_steps` of silence — the canonical autoscaling stimulus.
    pub fn flash_crowd_mix(requests: usize, seed: u64, bursts: u32, calm_gap_steps: u64) -> Self {
        TraceConfig::azure_mix(requests, seed).with_arrival_process(ArrivalProcess::FlashCrowd {
            bursts,
            burst_interarrival_steps: 1,
            calm_gap_steps,
        })
    }

    /// Generates the trace: `requests` requests in arrival order,
    /// deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// [`TraceError::NoClassWeight`] if all class weights are zero,
    /// [`TraceError::InvalidJitter`] if `length_jitter` is outside
    /// `[0, 1)`, [`TraceError::ZeroDeadline`] if a class SLO has a zero
    /// deadline.
    pub fn generate(&self) -> Result<Vec<Request>, TraceError> {
        if !self.class_weights.iter().any(|&w| w > 0) {
            return Err(TraceError::NoClassWeight);
        }
        if !(0.0..1.0).contains(&self.length_jitter) {
            return Err(TraceError::InvalidJitter(self.length_jitter.to_bits()));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let total_weight: u32 = self.class_weights.iter().sum();
        let mut step = 0u64;
        let mut out = Vec::with_capacity(self.requests);
        for id in 0..self.requests as u64 {
            if self.mean_interarrival_steps > 0 {
                step += rng.random_range(0..=2 * self.mean_interarrival_steps);
            }
            let mut pick = rng.random_range(0..total_weight);
            let mut class = RequestClass::Short;
            let mut class_idx = 0usize;
            for (i, (c, &w)) in RequestClass::all().iter().zip(&self.class_weights).enumerate() {
                if pick < w {
                    class = *c;
                    class_idx = i;
                    break;
                }
                pick -= w;
            }
            let jitter = |rng: &mut StdRng, base: u64| -> u64 {
                let f = 1.0 + self.length_jitter * (2.0 * rng.random::<f64>() - 1.0);
                ((base as f64 * f) as u64).max(1)
            };
            let prompt = jitter(&mut rng, class.input_tokens() * self.prompt_scale.max(1));
            let output = jitter(&mut rng, class.output_tokens());
            out.push(
                Request::new(id, step, prompt, output, class)?
                    .with_slo(self.class_slos[class_idx])?,
            );
        }
        if self.arrival != ArrivalProcess::Uniform {
            self.apply_arrival_process(&mut out);
        }
        if let Some(shared) = self.shared_prefix {
            self.apply_shared_prefix(&mut out, shared);
        }
        Ok(out)
    }

    /// Rewrites the trace's arrival steps to the configured
    /// non-[`Uniform`](ArrivalProcess::Uniform) process. Uses an RNG
    /// stream independent of [`TraceConfig::generate`]'s (the seed
    /// salted by a fixed constant), so classes, lengths and jitters are
    /// untouched and [`Uniform`](ArrivalProcess::Uniform) traces stay
    /// bit-identical. Steps remain non-decreasing in id order.
    fn apply_arrival_process(&self, out: &mut [Request]) {
        const ARRIVAL_SALT: u64 = 0xa221_7a1f_00d5_ca1e;
        let mut rng = StdRng::seed_from_u64(self.seed ^ ARRIVAL_SALT);
        match self.arrival {
            ArrivalProcess::Uniform => {}
            ArrivalProcess::FlashCrowd { bursts, burst_interarrival_steps, calm_gap_steps } => {
                let per = out.len().div_ceil((bursts.max(1)) as usize).max(1);
                let mut step = 0u64;
                for (i, r) in out.iter_mut().enumerate() {
                    if i > 0 {
                        if i % per == 0 {
                            // A new flash crowd after the calm.
                            step += calm_gap_steps.max(1);
                        } else {
                            step += rng.random_range(0..=2 * burst_interarrival_steps);
                        }
                    }
                    r.arrival_step = step;
                }
            }
            ArrivalProcess::Diurnal {
                period_steps,
                peak_interarrival_steps,
                trough_interarrival_steps,
            } => {
                let period = period_steps.max(1) as f64;
                let peak = peak_interarrival_steps as f64;
                let trough = trough_interarrival_steps as f64;
                let mut step = 0u64;
                for r in out.iter_mut() {
                    r.arrival_step = step;
                    // Cosine rate curve: fastest (peak) at the start of
                    // each period, slowest (trough) half a period in.
                    let phase = (step as f64 % period) / period;
                    let swing = 0.5 - 0.5 * (std::f64::consts::TAU * phase).cos();
                    let mean = peak + (trough - peak) * swing;
                    step += rng.random_range(0..=(2.0 * mean) as u64);
                }
            }
        }
    }

    /// Stamps shared-prefix identities onto a generated trace. Uses an
    /// RNG stream independent of [`TraceConfig::generate`]'s (the seed
    /// salted by a fixed constant), so the base trace — arrivals, classes,
    /// jitters — is untouched and prefix-free configs stay bit-identical.
    fn apply_shared_prefix(&self, out: &mut [Request], shared: SharedPrefixConfig) {
        const PREFIX_SALT: u64 = 0x9e37_79b9_7f4a_7c15;
        const CLASS_KEY_BASE: u64 = 0xc1a5_5000_0000_0000;
        const SESSION_KEY_BASE: u64 = 0x5e55_0000_0000_0000;
        let mut rng = StdRng::seed_from_u64(self.seed ^ PREFIX_SALT);
        // Open sessions per class: (session key, served context so far,
        // turns taken).
        let mut sessions: [Vec<(u64, u64, u32)>; 3] = Default::default();
        for r in out.iter_mut() {
            let ci = RequestClass::all().iter().position(|c| *c == r.class).unwrap_or(0);
            let roll = rng.random::<f64>();
            let follow_up = !sessions[ci].is_empty() && roll < shared.follow_up_fraction;
            if follow_up {
                let si = rng.random_range(0..sessions[ci].len() as u64) as usize;
                let (key, context, turns) = sessions[ci][si];
                let fresh = 1 + rng.random_range(0..2 * shared.follow_up_tokens.max(1));
                // The prompt is the conversation so far plus fresh user
                // tokens; the whole served context is the shared prefix.
                r.prompt_len = context + fresh;
                r.prefix_key = key;
                r.prefix_tokens = context;
                r.publish_key = key;
                if turns + 1 >= shared.max_turns.max(1) {
                    sessions[ci].swap_remove(si);
                } else {
                    sessions[ci][si] = (key, r.prompt_len + r.output_budget, turns + 1);
                }
            } else {
                // A fresh conversation: the prompt opens with the class
                // system prompt (shared with every other session of the
                // class) and the session's own context becomes reusable
                // under its session key.
                let session_key = SESSION_KEY_BASE | r.id;
                r.prompt_len = r.prompt_len.max(shared.system_prompt_tokens + 1);
                r.prefix_key = CLASS_KEY_BASE | ci as u64;
                r.prefix_tokens = shared.system_prompt_tokens.min(r.prompt_len);
                r.publish_key = session_key;
                if shared.max_turns > 1 {
                    sessions[ci].push((session_key, r.prompt_len + r.output_budget, 1));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_accessors() {
        let r = Request::new(3, 10, 1024, 350, RequestClass::Medium).unwrap();
        assert_eq!(r.context_at(0), 1024);
        assert_eq!(r.context_at(100), 1124);
        assert_eq!(r.total_tokens(), 1374);
        assert!(r.to_string().contains("req#3"));
        assert_eq!(r.slo, Slo::for_class(RequestClass::Medium));
    }

    #[test]
    fn zero_lengths_surface_as_errors() {
        assert_eq!(
            Request::new(0, 0, 16, 0, RequestClass::Short),
            Err(TraceError::ZeroOutputBudget { id: 0 })
        );
        assert_eq!(
            Request::new(7, 0, 0, 16, RequestClass::Short),
            Err(TraceError::ZeroPromptLen { id: 7 })
        );
        let r = Request::new(1, 0, 16, 16, RequestClass::Short).unwrap();
        assert_eq!(
            r.with_slo(Slo { deadline_ms: 0, priority: Priority::High }),
            Err(TraceError::ZeroDeadline { id: 1 })
        );
        assert!(TraceError::NoClassWeight.to_string().contains("class weight"));
    }

    #[test]
    fn malformed_configs_surface_as_errors() {
        let mut c = TraceConfig::azure_mix(10, 1);
        c.class_weights = [0, 0, 0];
        assert_eq!(c.generate(), Err(TraceError::NoClassWeight));
        let mut c = TraceConfig::azure_mix(10, 1);
        c.length_jitter = 1.5;
        assert_eq!(c.generate(), Err(TraceError::InvalidJitter(1.5f64.to_bits())));
        assert!(TraceError::InvalidJitter(1.5f64.to_bits()).to_string().contains("1.5"));
        // NaN and infinite inputs report themselves, not a mangled 0.
        assert!(TraceError::InvalidJitter(f64::NAN.to_bits()).to_string().contains("NaN"));
        let mut c = TraceConfig::azure_mix(10, 1);
        c.length_jitter = f64::INFINITY;
        assert_eq!(c.generate(), Err(TraceError::InvalidJitter(f64::INFINITY.to_bits())));
        let c = TraceConfig::azure_mix(10, 1)
            .with_class_slos([Slo { deadline_ms: 0, priority: Priority::High }; 3]);
        assert_eq!(c.generate(), Err(TraceError::ZeroDeadline { id: 0 }));
    }

    #[test]
    fn traces_are_seed_deterministic() {
        let a = TraceConfig::azure_mix(500, 42).generate().unwrap();
        let b = TraceConfig::azure_mix(500, 42).generate().unwrap();
        assert_eq!(a, b);
        let c = TraceConfig::azure_mix(500, 43).generate().unwrap();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn arrival_steps_are_monotone_and_spread() {
        let trace = TraceConfig::azure_mix(1000, 7).generate().unwrap();
        assert!(trace.windows(2).all(|w| w[0].arrival_step <= w[1].arrival_step));
        let last = trace.last().unwrap().arrival_step;
        // Mean gap 2 over 1000 requests: expect roughly 2000 steps.
        assert!((1000..4000).contains(&last), "spread {last}");
    }

    #[test]
    fn class_mix_roughly_matches_weights() {
        let trace = TraceConfig::azure_mix(3000, 11).generate().unwrap();
        let short = trace.iter().filter(|r| r.class == RequestClass::Short).count();
        let long = trace.iter().filter(|r| r.class == RequestClass::Long).count();
        assert!(short > 1500, "short {short}");
        assert!((100..700).contains(&long), "long {long}");
    }

    #[test]
    fn jitter_stays_within_band() {
        let trace = TraceConfig::azure_mix(2000, 5).generate().unwrap();
        for r in &trace {
            let base = r.class.input_tokens() as f64;
            assert!((r.prompt_len as f64) >= base * 0.74, "{r}");
            assert!((r.prompt_len as f64) <= base * 1.26, "{r}");
        }
    }

    #[test]
    fn long_context_scales_prompts() {
        let trace = TraceConfig::long_context(200, 9, 16).generate().unwrap();
        let mean = trace.iter().map(|r| r.prompt_len).sum::<u64>() as f64 / trace.len() as f64;
        // Base mix mean ≈ 6/10·256 + 3/10·1024 + 1/10·8192 ≈ 1280 ⇒ ×16.
        assert!(mean > 8.0 * 1280.0, "mean {mean}");
        let zero_gap = TraceConfig { mean_interarrival_steps: 0, ..TraceConfig::azure_mix(50, 1) }
            .generate()
            .unwrap();
        assert!(zero_gap.iter().all(|r| r.arrival_step == 0));
    }

    #[test]
    fn shared_prefix_traces_are_seed_deterministic_and_structured() {
        let a = TraceConfig::shared_prefix_mix(400, 21).generate().unwrap();
        let b = TraceConfig::shared_prefix_mix(400, 21).generate().unwrap();
        assert_eq!(a, b, "same seed, same shared-prefix trace");
        assert_ne!(a, TraceConfig::shared_prefix_mix(400, 22).generate().unwrap());
        let shared = SharedPrefixConfig::chat();
        let follow_ups: Vec<&Request> =
            a.iter().filter(|r| r.publish_key == r.prefix_key).collect();
        assert!(
            follow_ups.len() > 100 && follow_ups.len() < 350,
            "~60% of 400 arrivals should continue sessions, got {}",
            follow_ups.len()
        );
        for r in &a {
            // Every request opens with a shared prefix strictly inside
            // its prompt, and publishes its session context.
            assert!(r.prefix_key != 0 && r.publish_key != 0, "{r}");
            assert!(r.prefix_tokens > 0 && r.prefix_tokens < r.prompt_len, "{r}");
            if r.publish_key != r.prefix_key {
                // A session opener shares exactly the class system prompt.
                assert_eq!(r.prefix_tokens, shared.system_prompt_tokens, "{r}");
            }
        }
        for f in &follow_ups {
            // A follow-up's shared prefix is its predecessor's served
            // context: the predecessor publishes under the same key and
            // its prompt+output covers the follow-up's prefix.
            let pred = a
                .iter()
                .filter(|p| p.publish_key == f.prefix_key && p.id < f.id)
                .max_by_key(|p| p.id)
                .expect("follow-up has a predecessor");
            assert!(pred.arrival_step <= f.arrival_step);
            assert_eq!(pred.prompt_len + pred.output_budget, f.prefix_tokens, "{f}");
            assert_eq!(pred.class, f.class, "sessions stay within a class");
        }
    }

    #[test]
    fn shared_prefix_post_pass_preserves_the_base_stream() {
        // The prefix-free fields of a shared-prefix trace that the
        // post-pass does not touch (arrivals, classes, output budgets, and
        // the prompts of never-rewritten requests) match the plain trace
        // bit for bit: the prefix structure draws from an independent RNG.
        let plain = TraceConfig::azure_mix(300, 42).generate().unwrap();
        let shared = TraceConfig::shared_prefix_mix(300, 42).generate().unwrap();
        for (p, s) in plain.iter().zip(shared.iter()) {
            assert_eq!((p.id, p.arrival_step, p.class), (s.id, s.arrival_step, s.class));
            assert_eq!(p.output_budget, s.output_budget);
        }
        // And a config with `shared_prefix: None` is the plain trace.
        let none = TraceConfig { shared_prefix: None, ..TraceConfig::shared_prefix_mix(300, 42) }
            .generate()
            .unwrap();
        assert_eq!(plain, none);
        assert!(plain.iter().all(|r| r.prefix_key == 0 && r.publish_key == 0));
    }

    #[test]
    fn slos_follow_class_and_are_overridable() {
        let trace = TraceConfig::azure_mix(200, 3).generate().unwrap();
        for r in &trace {
            assert_eq!(r.slo, Slo::for_class(r.class), "{r}");
        }
        assert!(Slo::for_class(RequestClass::Short).priority > Priority::Normal);
        assert!(
            Slo::for_class(RequestClass::Short).deadline_s()
                < Slo::for_class(RequestClass::Long).deadline_s()
        );
        let tight = Slo::new(5.0, Priority::High);
        assert_eq!(tight.deadline_ms, 5_000);
        // Rounded, and positive inputs never collapse to the invalid
        // zero-deadline state.
        assert_eq!(Slo::new(0.0015, Priority::High).deadline_ms, 2);
        assert_eq!(Slo::new(0.0004, Priority::High).deadline_ms, 1);
        assert_eq!(Slo::new(0.0, Priority::High).deadline_ms, 0);
        assert_eq!(Slo::new(-3.0, Priority::High).deadline_ms, 0);
        let custom = TraceConfig::azure_mix(50, 3).with_class_slos([tight; 3]).generate().unwrap();
        assert!(custom.iter().all(|r| r.slo == tight));
        // SLO stamping must not perturb the RNG stream: lengths match the
        // default-SLO trace bit for bit.
        for (a, b) in trace.iter().zip(
            TraceConfig::azure_mix(200, 3).with_class_slos([tight; 3]).generate().unwrap().iter(),
        ) {
            assert_eq!(
                (a.prompt_len, a.output_budget, a.arrival_step),
                (b.prompt_len, b.output_budget, b.arrival_step)
            );
        }
    }

    #[test]
    fn uniform_arrival_process_is_bit_identical_to_default() {
        // Explicitly setting Uniform must not touch the RNG stream or
        // the steps — the golden-pinned traces depend on it.
        let base = TraceConfig::azure_mix(128, 42).generate().unwrap();
        let explicit = TraceConfig::azure_mix(128, 42)
            .with_arrival_process(ArrivalProcess::Uniform)
            .generate()
            .unwrap();
        assert_eq!(base, explicit);
    }

    #[test]
    fn flash_crowd_rewrites_only_arrival_steps() {
        let base = TraceConfig::azure_mix(96, 7).generate().unwrap();
        let bursty = TraceConfig::flash_crowd_mix(96, 7, 4, 1000).generate().unwrap();
        assert_eq!(bursty.len(), base.len());
        for (a, b) in base.iter().zip(&bursty) {
            // Classes, lengths and SLOs come from the unsalted stream.
            assert_eq!(
                (a.class, a.prompt_len, a.output_budget),
                (b.class, b.prompt_len, b.output_budget)
            );
        }
        // Deterministic in the seed.
        assert_eq!(bursty, TraceConfig::flash_crowd_mix(96, 7, 4, 1000).generate().unwrap());
        // Sorted, and shaped: exactly 3 inter-burst gaps >= the calm gap,
        // everything else tightly packed.
        assert!(bursty.windows(2).all(|w| w[0].arrival_step <= w[1].arrival_step));
        let gaps: Vec<u64> =
            bursty.windows(2).map(|w| w[1].arrival_step - w[0].arrival_step).collect();
        assert_eq!(gaps.iter().filter(|&&g| g >= 1000).count(), 3);
        assert!(gaps.iter().filter(|&&g| g < 1000).all(|&g| g <= 2));
    }

    #[test]
    fn diurnal_rate_swings_between_peak_and_trough() {
        let cfg = TraceConfig::azure_mix(400, 11).with_arrival_process(ArrivalProcess::Diurnal {
            period_steps: 4000,
            peak_interarrival_steps: 1,
            trough_interarrival_steps: 40,
        });
        let trace = cfg.generate().unwrap();
        assert_eq!(trace, cfg.generate().unwrap(), "deterministic in the seed");
        assert!(trace.windows(2).all(|w| w[0].arrival_step <= w[1].arrival_step));
        // Arrivals inside the first tenth of a period (peak rate) must be
        // denser than arrivals near the trough half a period in.
        let density = |lo: u64, hi: u64| {
            trace
                .iter()
                .filter(|r| {
                    let ph = r.arrival_step % 4000;
                    ph >= lo && ph < hi
                })
                .count()
        };
        let peak = density(0, 400);
        let trough = density(1800, 2200);
        assert!(
            peak > 3 * trough.max(1),
            "peak window should be much denser: peak={peak} trough={trough}"
        );
    }
}
