//! Request-level serving demo: a 10,000-request heterogeneous trace
//! served with continuous batching on a HILOS deployment, in the paper's
//! long-context >100B regime, with the serial vLLM baseline (Fig. 17b's
//! configuration) driven from the same trace for a goodput comparison —
//! then a three-way scheduling-policy shoot-out (FIFO vs deadline-EDF vs
//! priority-preemptive) on a contended Azure-mix trace.
//!
//! Finishes with a traced re-run of the shared-prefix scenario: pass
//! `--trace-out <path>` to write the lifecycle event stream as a
//! Chrome/Perfetto JSON document that <https://ui.perfetto.dev> opens
//! directly.
//!
//! ```sh
//! cargo run --release --example serving_trace -- --trace-out serving.trace.json
//! ```

use hilos::baselines::VllmMultiNode;
use hilos::core::{
    ChunkMode, DeadlineEdf, Fifo, HilosConfig, HilosSystem, PrefixCacheConfig, PriorityPreempt,
    SchedulingPolicy, ServeConfig, ServeEngine, ServingCampaign,
};
use hilos::llm::{presets, RequestClass, SharedPrefixConfig, TraceConfig};
use hilos::metrics::{fmt_bytes, fmt_seconds, Table};
use hilos::platform::SystemSpec;
use hilos::trace::{events_fnv, perfetto_json, LatencyAttribution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace-out" => {
                trace_out = Some(args.next().expect("--trace-out needs a path").into());
            }
            other => panic!("unknown argument {other:?} (supported: --trace-out <path>)"),
        }
    }
    let model = presets::opt_175b();
    // 10k requests, Azure class mix with prompts stretched 4x into the
    // long-context regime, arrivals thinned to roughly the deployment's
    // service rate so queueing stays finite.
    let trace =
        TraceConfig { mean_interarrival_steps: 8, ..TraceConfig::long_context(10_000, 42, 4) }
            .generate()?;

    let system = HilosSystem::new(&SystemSpec::a100_smartssd(16), &model, &HilosConfig::new(16))?
        .with_sim_layers(1);
    let mut campaign = ServingCampaign::new(system);
    let config = ServeConfig::new(32).with_deadline(6.0 * 3600.0);

    println!(
        "Serving {} requests of {} on 16 SmartSSDs (max batch {}, deadline {})\n",
        trace.len(),
        model.name(),
        config.max_batch,
        fmt_seconds(config.deadline_s),
    );
    let wall = std::time::Instant::now();
    let report = campaign.run_trace(&trace, &config)?;
    let wall = wall.elapsed();

    let mut t = Table::new(vec!["metric", "p50", "p95", "p99", "mean", "max"]);
    for (name, s) in [
        ("TTFT", report.ttft_stats()),
        ("inter-token", report.itl_stats()),
        ("end-to-end", report.e2e_stats()),
    ] {
        t.row(vec![
            name.into(),
            fmt_seconds(s.p50),
            fmt_seconds(s.p95),
            fmt_seconds(s.p99),
            fmt_seconds(s.mean),
            fmt_seconds(s.max),
        ]);
    }
    println!("{t}");

    println!(
        "Completed {} / rejected {} over {} serving steps ({} simulated, {:.1?} wall)",
        report.outcomes.len(),
        report.rejected.len(),
        report.steps,
        fmt_seconds(report.elapsed_s),
        wall,
    );
    println!(
        "Continuous batching: peak batch {}, {} joins, {} evictions, α re-selected {} times \
         (mean α {:.2}), {} cached operating points",
        report.peak_batch,
        report.joins,
        report.evictions,
        report.alpha_recomputes,
        report.mean_alpha,
        report.step_cache_entries,
    );
    println!(
        "Throughput {:.2} tok/s; goodput {:.2} tok/s ({:.1}% of requests met the deadline)",
        report.tokens_per_second(),
        report.token_goodput(),
        report.deadline_hit_rate() * 100.0,
    );
    println!(
        "Traffic: {} over the host interconnect, {} over the devices' internal paths; \
         array endurance used {:.4}%\n",
        fmt_bytes(report.host_pcie_bytes),
        fmt_bytes(report.internal_read_bytes),
        campaign.endurance_used() * 100.0,
    );

    // The same trace through the serial recompute-from-prefill vLLM
    // baseline (2 nodes x 4 A6000): KV for a >100B model spills to host
    // swap, and without continuous batching every request waits its turn.
    let vllm = VllmMultiNode::paper_testbed().run_trace(&model, &trace, config.deadline_s)?;
    let mut cmp = Table::new(vec!["system", "tok/s", "goodput tok/s", "TTFT p99"]);
    cmp.row(vec![
        "HILOS (continuous batching)".into(),
        format!("{:.2}", report.tokens_per_second()),
        format!("{:.2}", report.token_goodput()),
        fmt_seconds(report.ttft_stats().p99),
    ]);
    cmp.row(vec![
        "vLLM 2x4xA6000 (serial)".into(),
        format!("{:.2}", vllm.tokens_per_second()),
        format!("{:.2}", vllm.token_goodput()),
        fmt_seconds(vllm.ttft_stats().p99),
    ]);
    println!("{cmp}");
    println!(
        "HILOS serves {:.1}x the vLLM baseline's throughput on this trace\n",
        report.tokens_per_second() / vllm.tokens_per_second().max(1e-12),
    );

    // -- Scheduling-policy comparison ------------------------------------
    // A contended Azure-mix trace (arrivals ~2.3x the service rate) on a
    // smaller deployment: admission order now decides who meets their
    // SLO. FIFO lets tight-deadline shorts rot behind loose-deadline
    // longs; EDF re-orders admission by absolute deadline; the priority
    // policy additionally preempts decoding low-priority longs the moment
    // a high-priority short arrives.
    let contended = TraceConfig { mean_interarrival_steps: 20, ..TraceConfig::azure_mix(256, 42) }
        .generate()?;
    println!(
        "Policy comparison: {} contended requests of {} on 8 SmartSSDs (max batch 8)\n",
        contended.len(),
        presets::opt_30b().name(),
    );
    let mut t = Table::new(vec![
        "policy",
        "SLO goodput tok/s",
        "SLO hit rate",
        "Short TTFT p95",
        "Short e2e p95",
        "preemptions",
    ]);
    for policy in [
        Box::new(Fifo) as Box<dyn SchedulingPolicy>,
        Box::new(DeadlineEdf::new()),
        Box::new(PriorityPreempt::new()),
    ] {
        let sys = HilosSystem::new(
            &SystemSpec::a100_smartssd(8),
            &presets::opt_30b(),
            &HilosConfig::new(8),
        )?
        .with_sim_layers(1);
        let mut campaign = ServingCampaign::new(sys);
        let r = campaign.run_trace_with_policy(&contended, &ServeConfig::new(8), policy)?;
        let short = r.class_report(RequestClass::Short).expect("Short class completed");
        t.row(vec![
            r.policy.clone(),
            format!("{:.2}", r.slo_token_goodput()),
            format!("{:.1}%", r.slo_hit_rate() * 100.0),
            fmt_seconds(short.ttft.p95),
            fmt_seconds(short.e2e.p95),
            r.preemptions.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "EDF admits by absolute deadline, so the same hardware meets far more SLOs; \
         priority preemption additionally collapses the high-class TTFT tail.\n"
    );

    // -- Chunked prefill: lump vs token-budgeted ingestion ---------------
    // A Long-heavy 8x-stretched trace where prompt ingestion is the
    // dominant bandwidth contender. Lump mode lands each whole prompt
    // inside one serving step (every running decode absorbs the spike);
    // chunking bounds the per-step interference at the cost of slower
    // prompt completion.
    let mut cfg = TraceConfig::long_context(96, 42, 8).with_mean_interarrival(80);
    cfg.class_weights = [1, 3, 6];
    let long_trace = cfg.generate()?;
    println!(
        "Chunked prefill: {} long-prompt requests of {} on 8 SmartSSDs (max batch 8)\n",
        long_trace.len(),
        presets::opt_30b().name(),
    );
    let mut t = Table::new(vec![
        "prefill mode",
        "decode-gap p95",
        "decode-gap p99",
        "decode-gap max",
        "TTFT p95",
        "interference",
        "chunks",
    ]);
    for (name, mode) in [
        ("off (free, on the side)", ChunkMode::Off),
        ("lump (inline, whole prompt)", ChunkMode::Lump),
        ("chunked (256 @ 2048 budget)", ChunkMode::chunked()),
    ] {
        let sys = HilosSystem::new(
            &SystemSpec::a100_smartssd(8),
            &presets::opt_30b(),
            &HilosConfig::new(8),
        )?
        .with_sim_layers(1);
        let mut eng = ServeEngine::new(sys, ServeConfig::new(8).with_chunk_mode(mode))?;
        let r = eng.run_trace(&long_trace)?;
        let s = r.step_itl_stats();
        t.row(vec![
            name.into(),
            fmt_seconds(s.p95),
            fmt_seconds(s.p99),
            fmt_seconds(s.max),
            fmt_seconds(r.ttft_stats().p95),
            fmt_seconds(r.prefill.interference_seconds),
            r.prefill.chunks.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "The legacy mode pretends prompt ingestion is free; inline lump prefill charges\n\
         it to a single step and the decode-gap tail explodes; token-budgeted chunking\n\
         does the same total prefill work but bounds how much any one step absorbs.\n"
    );

    // -- Prefix KV-cache reuse: skip redundant prefill ------------------
    // Every fresh conversation opens with the same 8192-token document
    // prefix and 60% of arrivals continue a cached session, so most of
    // each prompt's prefill is work someone already did. With the cache
    // on, admission probes the prefix index, skips the cached chunks, and
    // pays the HBM->DRAM->SSD residency ladder's recall I/O instead.
    let shared = SharedPrefixConfig {
        system_prompt_tokens: 8192,
        follow_up_fraction: 0.6,
        follow_up_tokens: 256,
        max_turns: 8,
    };
    let prefix_trace = TraceConfig::long_context(192, 42, 8)
        .with_mean_interarrival(100)
        .with_shared_prefix(shared)
        .generate()?;
    println!(
        "Prefix KV-cache reuse: {} requests sharing an 8192-token document prefix\n",
        prefix_trace.len(),
    );
    let mut t = Table::new(vec![
        "prefix cache",
        "TTFT p50",
        "TTFT p95",
        "hit rate",
        "saved prefill tokens",
        "recall I/O",
    ]);
    for (name, cache) in
        [("off", None), ("on (HBM\u{2192}DRAM\u{2192}SSD)", Some(PrefixCacheConfig::default()))]
    {
        let sys = HilosSystem::new(
            &SystemSpec::a100_smartssd(8),
            &presets::opt_30b(),
            &HilosConfig::new(8),
        )?
        .with_sim_layers(1);
        let mut cfg = ServeConfig::new(16);
        if let Some(pc) = cache {
            cfg = cfg.with_prefix_cache(pc);
        }
        let r = ServeEngine::new(sys, cfg)?.run_trace(&prefix_trace)?;
        let ttft = r.ttft_stats();
        t.row(vec![
            name.into(),
            fmt_seconds(ttft.p50),
            fmt_seconds(ttft.p95),
            format!("{:.1}%", r.prefix.hit_rate() * 100.0),
            r.prefix.saved_prefill_tokens.to_string(),
            fmt_seconds(r.prefix.recall_seconds),
        ]);
    }
    println!("{t}");
    println!(
        "Hits skip their prefix's prefill chunks entirely; the recall seconds are the\n\
         ladder's price for the cached KV that had been demoted out of HBM.\n"
    );

    // -- Deterministic lifecycle tracing --------------------------------
    // The same shared-prefix scenario re-run with the event ring on:
    // every arrival, admission, prefill chunk, prefix hit, recall, token
    // emission and completion lands in a deterministic event stream that
    // attributes each request's latency phase by phase.
    let sys =
        HilosSystem::new(&SystemSpec::a100_smartssd(8), &presets::opt_30b(), &HilosConfig::new(8))?
            .with_sim_layers(1);
    let cfg = ServeConfig::new(16)
        .with_chunk_mode(ChunkMode::chunked())
        .with_prefix_cache(PrefixCacheConfig::default())
        .with_tracing(1 << 20);
    let traced = ServeEngine::new(sys, cfg)?.run_trace(&prefix_trace)?;
    println!(
        "Lifecycle tracing: {} events retained ({} dropped), stream FNV 0x{:016x}",
        traced.events.len(),
        traced.events_dropped,
        events_fnv(&traced.events),
    );
    let attr = LatencyAttribution::analyze(&[&traced.events]);
    let mut t = Table::new(vec![
        "request",
        "TTFT",
        "queue",
        "recall",
        "prefill",
        "interference",
        "preempt-lost",
        "decode",
        "e2e",
    ]);
    for row in attr.worst_ttft(3) {
        t.row(vec![
            row.id.to_string(),
            fmt_seconds(row.ttft_s),
            fmt_seconds(row.queue_s),
            fmt_seconds(row.recall_s),
            fmt_seconds(row.prefill_s),
            fmt_seconds(row.interference_s),
            fmt_seconds(row.preemption_lost_s),
            fmt_seconds(row.decode_s),
            fmt_seconds(row.e2e_s),
        ]);
    }
    println!("Worst-TTFT requests, additively decomposed (components sum to e2e):\n{t}");
    if let Some(path) = trace_out {
        let doc = perfetto_json(&[&traced.events]);
        std::fs::write(&path, &doc)?;
        println!(
            "Wrote Chrome trace to {} ({} bytes) — open it at https://ui.perfetto.dev",
            path.display(),
            doc.len(),
        );
    }
    Ok(())
}
