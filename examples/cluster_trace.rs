//! Cluster-serving demo: one contended trace balanced across three
//! heterogeneous HILOS deployments (distinct device counts and
//! degradation profiles) under the three shipped routing policies —
//! capacity-blind round-robin, load-aware join-shortest-queue, and
//! pressure-aware ledger-pressure (power-of-two-choices over free KV
//! bytes × device bandwidth). Pressure-aware routing sheds load from the
//! small degraded array toward the healthy one and wins on SLO goodput.
//!
//! Finishes with a traced elastic re-run: pass `--trace-out <path>` to
//! write the fleet's lifecycle event streams (one track per deployment,
//! scale-up/drain/retire instants included) as a Chrome/Perfetto JSON
//! document that <https://ui.perfetto.dev> opens directly.
//!
//! Pass `--cluster-threads <n>` to step the deployments through the
//! lockstep fan-out pool — every table is bit-identical at any thread
//! count; only wall-clock time changes.
//!
//! ```sh
//! cargo run --release --example cluster_trace -- \
//!     --trace-out cluster.trace.json --cluster-threads 4
//! ```

use hilos::core::cluster::{
    AutoscalePolicy, ClusterConfig, ClusterEngine, CostNormalizedPressure, ElasticClusterEngine,
    ElasticConfig, HybridHistogramKeepAlive, JoinShortestQueue, LedgerPressure, RoundRobin,
    RoutingPolicy, TargetPressureScaler,
};
use hilos::core::{
    ChunkMode, HilosConfig, HilosSystem, PrefixCacheConfig, ServeConfig, ServeEngine,
};
use hilos::llm::{presets, SharedPrefixConfig, TraceConfig};
use hilos::metrics::{fmt_seconds, provisioned_power_w, FleetBill, Table};
use hilos::platform::SystemSpec;
use hilos::trace::{check_conservation, perfetto_json, Event, LatencyAttribution};

fn deployment_with(n: usize, degraded: Option<(usize, f64)>, chunk_mode: ChunkMode) -> ServeEngine {
    let mut sys =
        HilosSystem::new(&SystemSpec::a100_smartssd(n), &presets::opt_30b(), &HilosConfig::new(n))
            .expect("valid deployment")
            .with_sim_layers(1);
    if let Some((device, factor)) = degraded {
        sys = sys.with_degraded_device(device, factor);
    }
    ServeEngine::new(sys, ServeConfig::new(8).with_chunk_mode(chunk_mode))
        .expect("deployment builds")
}

fn deployment(n: usize, degraded: Option<(usize, f64)>) -> ServeEngine {
    deployment_with(n, degraded, ChunkMode::Off)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut cluster_threads = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace-out" => {
                trace_out = Some(args.next().expect("--trace-out needs a path").into());
            }
            "--cluster-threads" => {
                cluster_threads = args
                    .next()
                    .expect("--cluster-threads needs a count")
                    .parse()
                    .expect("--cluster-threads needs a number");
            }
            other => panic!(
                "unknown argument {other:?} \
                 (supported: --trace-out <path>, --cluster-threads <n>)"
            ),
        }
    }
    // Every run below is bit-identical at any thread count — the flag
    // only changes wall-clock time.
    let ccfg = ClusterConfig::new().with_cluster_threads(cluster_threads);
    if cluster_threads > 1 {
        println!("Stepping deployments through {cluster_threads} lockstep fan-out threads.\n");
    }

    // The seeded contended trace of `BENCH_cluster.json`: one arrival
    // every ~10 serving steps keeps the weak deployment overloaded under
    // blind routing while the cluster as a whole has capacity to spare.
    let trace = TraceConfig { mean_interarrival_steps: 10, ..TraceConfig::azure_mix(384, 42) }
        .generate()?;

    println!(
        "Balancing {} requests of {} across 3 heterogeneous deployments:\n\
         \u{20}  dep0: 8 healthy SmartSSDs\n\
         \u{20}  dep1: 6 SmartSSDs, one at half bandwidth\n\
         \u{20}  dep2: 4 SmartSSDs, one at quarter bandwidth\n",
        trace.len(),
        presets::opt_30b().name(),
    );

    let mut t = Table::new(vec![
        "routing",
        "SLO goodput tok/s",
        "SLO hit rate",
        "makespan",
        "TTFT p95",
        "dispatched",
        "re-dispatched",
    ]);
    for routing in [
        Box::new(RoundRobin::new()) as Box<dyn RoutingPolicy>,
        Box::new(JoinShortestQueue),
        Box::new(LedgerPressure::new()),
    ] {
        let mut cluster = ClusterEngine::with_config(
            vec![
                deployment(8, None),
                deployment(6, Some((1, 0.5))),
                deployment(4, Some((0, 0.25))),
            ],
            routing,
            ccfg,
        );
        let r = cluster.run_trace(&trace)?;
        assert_eq!(r.completed(), trace.len(), "every request completes");
        let dispatched: Vec<String> = r.dispatched.iter().map(u64::to_string).collect();
        t.row(vec![
            r.routing.clone(),
            format!("{:.2}", r.slo_token_goodput()),
            format!("{:.1}%", r.slo_hit_rate() * 100.0),
            fmt_seconds(r.elapsed_s()),
            fmt_seconds(r.ttft_stats().p95),
            dispatched.join("/"),
            r.redispatches.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "Round-robin feeds the degraded 4-device array a third of the traffic and its\n\
         requests rot; join-shortest-queue reacts to queue depth but not drain rate;\n\
         ledger-pressure routes by free KV bytes x aggregate device bandwidth per unit\n\
         of load, so the healthy array absorbs the surplus and the cluster finishes\n\
         the same trace sooner at a higher SLO goodput.\n"
    );

    // -- Chunked vs lump prefill across the same cluster -----------------
    // The token-budgeted serving step one level up: every deployment
    // ingests prompts inside its steps, and the cluster report merges the
    // interference/stall breakdown. Routers also see each deployment's
    // prefill backlog (`DeploymentView::prefill_backlog_tokens`).
    let mut long_cfg = TraceConfig::long_context(96, 42, 4).with_mean_interarrival(30);
    long_cfg.class_weights = [2, 4, 4];
    let long_trace = long_cfg.generate()?;
    println!(
        "Chunked prefill across the cluster: {} long-prompt requests, ledger-pressure routing\n",
        long_trace.len(),
    );
    let mut t = Table::new(vec![
        "prefill mode",
        "decode-gap p99",
        "decode-gap max",
        "interference",
        "stall",
        "chunks",
    ]);
    for (name, mode) in
        [("lump (inline)", ChunkMode::Lump), ("chunked (256 @ 2048)", ChunkMode::chunked())]
    {
        let mut cluster = ClusterEngine::with_config(
            vec![
                deployment_with(8, None, mode),
                deployment_with(6, Some((1, 0.5)), mode),
                deployment_with(4, Some((0, 0.25)), mode),
            ],
            Box::new(LedgerPressure::new()),
            ccfg,
        );
        let r = cluster.run_trace(&long_trace)?;
        assert_eq!(r.completed(), long_trace.len(), "every request completes");
        let s = r.step_itl_stats();
        let pf = r.prefill_breakdown();
        t.row(vec![
            name.into(),
            fmt_seconds(s.p99),
            fmt_seconds(s.max),
            fmt_seconds(pf.interference_seconds),
            fmt_seconds(pf.stall_seconds),
            pf.chunks.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "Both modes do the same total prompt ingestion, but chunking bounds how much of\n\
         it any single decode step absorbs — the worst emission gap shrinks on every\n\
         deployment at once.\n"
    );

    // -- Prefix KV-cache reuse across the cluster ------------------------
    // Every deployment carries its own prefix index and HBM->DRAM->SSD
    // residency ladder; ledger-pressure routing sees each deployment's
    // hit rate (`DeploymentView::prefix_hit_rate`) and favors warm
    // caches. The cluster report merges the per-deployment accounting.
    let shared = SharedPrefixConfig {
        system_prompt_tokens: 8192,
        follow_up_fraction: 0.6,
        follow_up_tokens: 256,
        max_turns: 8,
    };
    let prefix_trace = TraceConfig::long_context(192, 42, 4)
        .with_mean_interarrival(40)
        .with_shared_prefix(shared)
        .generate()?;
    println!(
        "Prefix KV-cache reuse across the cluster: {} shared-prefix requests\n",
        prefix_trace.len(),
    );
    let mut t = Table::new(vec![
        "prefix cache",
        "TTFT p95",
        "hit rate",
        "saved prefill tokens",
        "makespan",
    ]);
    for (name, cache) in
        [("off", None), ("on (per deployment)", Some(PrefixCacheConfig::default()))]
    {
        let build = |n: usize, degraded: Option<(usize, f64)>| {
            let mut sys = HilosSystem::new(
                &SystemSpec::a100_smartssd(n),
                &presets::opt_30b(),
                &HilosConfig::new(n),
            )
            .expect("valid deployment")
            .with_sim_layers(1);
            if let Some((device, factor)) = degraded {
                sys = sys.with_degraded_device(device, factor);
            }
            let mut cfg = ServeConfig::new(8);
            if let Some(pc) = cache {
                cfg = cfg.with_prefix_cache(pc);
            }
            ServeEngine::new(sys, cfg).expect("deployment builds")
        };
        let mut cluster = ClusterEngine::with_config(
            vec![build(8, None), build(6, Some((1, 0.5))), build(4, Some((0, 0.25)))],
            Box::new(LedgerPressure::new()),
            ccfg,
        );
        let r = cluster.run_trace(&prefix_trace)?;
        assert_eq!(r.completed(), prefix_trace.len(), "every request completes");
        let pc = r.prefix_cache();
        t.row(vec![
            name.into(),
            fmt_seconds(r.ttft_stats().p95),
            format!("{:.1}%", pc.hit_rate() * 100.0),
            pc.saved_prefill_tokens.to_string(),
            fmt_seconds(r.elapsed_s()),
        ]);
    }
    println!("{t}");
    println!(
        "Each deployment only reuses prefixes it has served before, so the router's\n\
         cache-affinity term matters: warm deployments drain shared-prefix arrivals\n\
         faster than cold ones for the same queue depth.\n"
    );

    // -- Elastic vs reserved fleet on a bursty trace ---------------------
    // The fleet-sizing layer: a flash-crowd trace (short dense bursts,
    // long calm gaps) served by a 4-slot fleet. The reserved baseline
    // keeps every slot provisioned for the whole run and is billed
    // slot-price x makespan; the elastic cluster starts one slot, pays
    // every cold start it causes (container provision + weight load at
    // SSD bandwidth), drains live through the migration machinery on
    // scale-down, and is billed per-slot busy seconds.
    let bursty = TraceConfig::flash_crowd_mix(512, 42, 8, 2400).generate()?;
    let fleet =
        || vec![deployment(8, None), deployment(6, None), deployment(4, None), deployment(4, None)];
    println!(
        "Elastic vs reserved: {} requests in 8 bursts across a 4-slot fleet,\n\
         cost-normalized routing\n",
        bursty.len(),
    );

    let mut t = Table::new(vec![
        "fleet",
        "$ / 1k goodput tok",
        "fleet bill",
        "SLO hit rate",
        "scale-ups",
        "retires",
        "peak active",
    ]);
    let mut fixed = ClusterEngine::with_config(fleet(), Box::new(CostNormalizedPressure), ccfg);
    let fr = fixed.run_trace(&bursty)?;
    assert_eq!(fr.completed(), bursty.len(), "every request completes");
    let slot_costs: Vec<(f64, f64)> = fixed
        .deployments()
        .iter()
        .map(|e| {
            let spec = e.system().spec();
            (spec.total_price_usd(), provisioned_power_w(spec))
        })
        .collect();
    let reserved = FleetBill::reserved(&slot_costs, fr.elapsed_s());
    let fixed_cost = reserved.cost_per_1k_tokens(fr.goodput_tokens());
    t.row(vec![
        "reserved (always-on)".into(),
        format!("${fixed_cost:.4}"),
        format!("${:.2}", reserved.cost_usd()),
        format!("{:.1}%", fr.slo_hit_rate() * 100.0),
        "-".into(),
        "-".into(),
        "4".into(),
    ]);
    let mut hybrid_cost = f64::INFINITY;
    for autoscale in [
        Box::new(TargetPressureScaler::default()) as Box<dyn AutoscalePolicy>,
        Box::new(HybridHistogramKeepAlive::new(64)),
    ] {
        let name = autoscale.name();
        let mut elastic = ElasticClusterEngine::new(
            fleet(),
            Box::new(CostNormalizedPressure),
            autoscale,
            ElasticConfig { cluster: ccfg, ..ElasticConfig::new(1) },
        );
        let r = elastic.run_trace(&bursty)?;
        assert_eq!(r.cluster.completed(), bursty.len(), "elasticity loses nothing");
        assert_eq!(r.lost(), 0, "zero dropped requests");
        let cost = r.cost_per_1k_goodput_tokens();
        if name == "hybrid-histogram-keep-alive" {
            hybrid_cost = cost;
        }
        t.row(vec![
            format!("elastic ({name})"),
            format!("${cost:.4}"),
            format!("${:.2}", r.fleet_bill().cost_usd()),
            format!("{:.1}%", r.cluster.slo_hit_rate() * 100.0),
            r.scale_ups.to_string(),
            r.retires.to_string(),
            r.peak_active.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "The reactive scaler eats a full cold start on every burst and serves the\n\
         burst head under-provisioned; the keep-alive predictor learns the inter-burst\n\
         gap histogram, releases capacity once a burst is confirmed over, and has the\n\
         slots warm again before the next one lands -- {:.2}x cheaper per goodput\n\
         token than the always-on fleet, with zero lost requests.\n",
        fixed_cost / hybrid_cost,
    );

    // -- Deterministic lifecycle tracing across the elastic fleet --------
    // The keep-alive elastic run again with every slot's event ring on:
    // routing, migration and scale-up/drain/retire transitions land in
    // per-deployment streams that the conservation check audits
    // cluster-wide and the Perfetto exporter lays out one track per slot.
    let traced_slot = |n: usize| {
        let sys = HilosSystem::new(
            &SystemSpec::a100_smartssd(n),
            &presets::opt_30b(),
            &HilosConfig::new(n),
        )
        .expect("valid deployment")
        .with_sim_layers(1);
        ServeEngine::new(sys, ServeConfig::new(8).with_tracing(1 << 20)).expect("deployment builds")
    };
    let mut elastic = ElasticClusterEngine::new(
        vec![traced_slot(8), traced_slot(6), traced_slot(4), traced_slot(4)],
        Box::new(CostNormalizedPressure),
        Box::new(HybridHistogramKeepAlive::new(64)),
        ElasticConfig { cluster: ccfg, ..ElasticConfig::new(1) },
    );
    let r = elastic.run_trace(&bursty)?;
    let rings: Vec<&[Event]> = r.cluster.deployments.iter().map(|d| d.events.as_slice()).collect();
    let cons = check_conservation(&rings);
    assert!(cons.holds(), "event conservation violated: {cons:?}");
    println!(
        "Lifecycle tracing: {} events across {} deployment tracks; conservation holds\n\
         ({} arrived = {} completed + {} rejected + {} shed, each exactly once)",
        rings.iter().map(|r| r.len()).sum::<usize>(),
        rings.len(),
        cons.arrived,
        cons.completed,
        cons.rejected,
        cons.shed,
    );
    let attr = LatencyAttribution::analyze(&rings);
    let mut t = Table::new(vec![
        "request",
        "deployment",
        "TTFT",
        "queue",
        "migration",
        "prefill",
        "preempt-lost",
        "decode",
        "e2e",
    ]);
    for row in attr.worst_ttft(3) {
        t.row(vec![
            row.id.to_string(),
            row.deployment.to_string(),
            fmt_seconds(row.ttft_s),
            fmt_seconds(row.queue_s),
            fmt_seconds(row.migration_s),
            fmt_seconds(row.prefill_s),
            fmt_seconds(row.preemption_lost_s),
            fmt_seconds(row.decode_s),
            fmt_seconds(row.e2e_s),
        ]);
    }
    println!("Worst-TTFT requests, additively decomposed (components sum to e2e):\n{t}");
    if let Some(path) = trace_out {
        let doc = perfetto_json(&rings);
        std::fs::write(&path, &doc)?;
        println!(
            "Wrote Chrome trace to {} ({} bytes) — open it at https://ui.perfetto.dev",
            path.display(),
            doc.len(),
        );
    }
    Ok(())
}
