//! Cluster-serving demo: one contended trace balanced across three
//! heterogeneous HILOS deployments (distinct device counts and
//! degradation profiles) under the three shipped routing policies —
//! capacity-blind round-robin, load-aware join-shortest-queue, and
//! pressure-aware ledger-pressure (power-of-two-choices over free KV
//! bytes × device bandwidth). Pressure-aware routing sheds load from the
//! small degraded array toward the healthy one and wins on SLO goodput.
//!
//! ```sh
//! cargo run --release --example cluster_trace
//! ```

use hilos::core::cluster::{
    ClusterEngine, JoinShortestQueue, LedgerPressure, RoundRobin, RoutingPolicy,
};
use hilos::core::{HilosConfig, HilosSystem, ServeConfig, ServeEngine};
use hilos::llm::{presets, TraceConfig};
use hilos::metrics::{fmt_seconds, Table};
use hilos::platform::SystemSpec;

fn deployment(n: usize, degraded: Option<(usize, f64)>) -> ServeEngine {
    let mut sys =
        HilosSystem::new(&SystemSpec::a100_smartssd(n), &presets::opt_30b(), &HilosConfig::new(n))
            .expect("valid deployment")
            .with_sim_layers(1);
    if let Some((device, factor)) = degraded {
        sys = sys.with_degraded_device(device, factor);
    }
    ServeEngine::new(sys, ServeConfig::new(8)).expect("deployment builds")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The seeded contended trace of `BENCH_cluster.json`: one arrival
    // every ~10 serving steps keeps the weak deployment overloaded under
    // blind routing while the cluster as a whole has capacity to spare.
    let trace = TraceConfig { mean_interarrival_steps: 10, ..TraceConfig::azure_mix(384, 42) }
        .generate()?;

    println!(
        "Balancing {} requests of {} across 3 heterogeneous deployments:\n\
         \u{20}  dep0: 8 healthy SmartSSDs\n\
         \u{20}  dep1: 6 SmartSSDs, one at half bandwidth\n\
         \u{20}  dep2: 4 SmartSSDs, one at quarter bandwidth\n",
        trace.len(),
        presets::opt_30b().name(),
    );

    let mut t = Table::new(vec![
        "routing",
        "SLO goodput tok/s",
        "SLO hit rate",
        "makespan",
        "TTFT p95",
        "dispatched",
        "re-dispatched",
    ]);
    for routing in [
        Box::new(RoundRobin::new()) as Box<dyn RoutingPolicy>,
        Box::new(JoinShortestQueue),
        Box::new(LedgerPressure::new()),
    ] {
        let mut cluster = ClusterEngine::new(
            vec![
                deployment(8, None),
                deployment(6, Some((1, 0.5))),
                deployment(4, Some((0, 0.25))),
            ],
            routing,
        );
        let r = cluster.run_trace(&trace)?;
        assert_eq!(r.completed(), trace.len(), "every request completes");
        let dispatched: Vec<String> = r.dispatched.iter().map(u64::to_string).collect();
        t.row(vec![
            r.routing.clone(),
            format!("{:.2}", r.slo_token_goodput()),
            format!("{:.1}%", r.slo_hit_rate() * 100.0),
            fmt_seconds(r.elapsed_s()),
            fmt_seconds(r.ttft_stats().p95),
            dispatched.join("/"),
            r.redispatches.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "Round-robin feeds the degraded 4-device array a third of the traffic and its\n\
         requests rot; join-shortest-queue reacts to queue depth but not drain rate;\n\
         ledger-pressure routes by free KV bytes x aggregate device bandwidth per unit\n\
         of load, so the healthy array absorbs the surplus and the cluster finishes\n\
         the same trace sooner at a higher SLO goodput."
    );
    Ok(())
}
