//! Book-length summarization (the paper's motivating offline workload,
//! §1): a batch of 128K-token documents pushed through OPT-175B, compared
//! across FLEX(SSD), FLEX(DRAM) and HILOS — with cost and energy.
//!
//! ```sh
//! cargo run --release --example book_summarization
//! ```

use hilos::baselines::{FlexGenSystem, KvLocation};
use hilos::core::{HilosConfig, HilosSystem};
use hilos::llm::presets;
use hilos::metrics::{energy, tokens_per_second_per_dollar, ActivitySnapshot, Table};
use hilos::platform::SystemSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = presets::opt_175b();
    let (batch, ctx, out_len) = (16u32, 128 * 1024u64, 350u64);
    println!("Workload: {batch} documents x {}K tokens -> {out_len}-token summaries", ctx / 1024);
    println!("Model: {model}\n");

    let mut table =
        Table::new(vec!["system", "status", "decode tok/s", "batch job (h)", "tok/s/$", "J/token"]);

    // FLEX(SSD): four PM9A3 on an A100 server.
    let flex_spec = SystemSpec::a100_pm9a3(4);
    let flex = FlexGenSystem::new(&flex_spec, &model, KvLocation::SsdArray)?;
    match flex.run_decode(batch, ctx, out_len) {
        Ok(r) => {
            let act = ActivitySnapshot {
                seconds: r.avg_step_seconds,
                gpu: r.gpu_utilization,
                cpu: r.cpu_utilization,
                dram: r.dram_utilization,
                ssd: 0.6,
            };
            table.row(vec![
                "FLEX(SSD)".into(),
                "ok".into(),
                format!("{:.4}", r.tokens_per_second()),
                format!("{:.1}", r.decode_seconds / 3600.0),
                format!("{:.2e}", tokens_per_second_per_dollar(&flex_spec, r.tokens_per_second())),
                format!("{:.0}", energy(&flex_spec, &act).total() / batch as f64),
            ]);
        }
        Err(e) => {
            table.row(vec!["FLEX(SSD)".into(), e.to_string()]);
        }
    }

    // FLEX(DRAM): the 512 GB host cannot hold this KV cache at all.
    let dram = FlexGenSystem::new(&flex_spec, &model, KvLocation::HostDram)?;
    match dram.run_decode(batch, ctx, out_len) {
        Ok(r) => {
            table.row(vec![
                "FLEX(DRAM)".into(),
                "ok".into(),
                format!("{:.4}", r.tokens_per_second()),
            ]);
        }
        Err(e) => {
            table.row(vec!["FLEX(DRAM)".into(), e.to_string()]);
        }
    }

    // HILOS with 16 SmartSSDs.
    let hilos_spec = SystemSpec::a100_smartssd(16);
    let hilos = HilosSystem::new(&hilos_spec, &model, &HilosConfig::new(16))?;
    let r = hilos.run_decode(batch, ctx, out_len)?;
    let act = ActivitySnapshot {
        seconds: r.avg_step_seconds,
        gpu: r.gpu_utilization,
        cpu: r.cpu_utilization,
        dram: r.dram_utilization,
        ssd: 0.9,
    };
    table.row(vec![
        "HILOS(16)".into(),
        format!("ok (alpha={:.0}%)", r.alpha * 100.0),
        format!("{:.4}", r.tokens_per_second()),
        format!("{:.1}", r.decode_seconds / 3600.0),
        format!("{:.2e}", tokens_per_second_per_dollar(&hilos_spec, r.tokens_per_second())),
        format!("{:.0}", energy(&hilos_spec, &act).total() / batch as f64),
    ]);

    println!("{table}");
    Ok(())
}
