//! Model-zoo benchmarking sweep (the paper's other motivating workload:
//! large-scale LLM benchmarking, §1): every Table 2 model on a medium
//! offline batch, HILOS versus FLEX(SSD).
//!
//! ```sh
//! cargo run --release --example benchmark_sweep
//! ```

use hilos::baselines::{FlexGenSystem, KvLocation};
use hilos::core::{HilosConfig, HilosSystem};
use hilos::llm::{presets, BatchSpec};
use hilos::metrics::Table;
use hilos::platform::SystemSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (batch, ctx) = (16u32, 32 * 1024u64);
    println!("Benchmark sweep: bs={batch}, s={}K, decode throughput\n", ctx / 1024);

    let mut table = Table::new(vec![
        "model",
        "d_group",
        "MoE",
        "FLEX(SSD) tok/s",
        "HILOS(16) tok/s",
        "speedup",
        "alpha",
    ]);
    for model in presets::all() {
        let flex = FlexGenSystem::new(&SystemSpec::a100_pm9a3(4), &model, KvLocation::SsdArray)?
            .run_decode(batch, ctx, 8)
            .map(|r| r.tokens_per_second());
        let hilos_sys =
            HilosSystem::new(&SystemSpec::a100_smartssd(16), &model, &HilosConfig::new(16))?;
        let hilos = hilos_sys.run_decode(batch, ctx, 8)?;
        let speedup = flex.as_ref().map(|f| hilos.tokens_per_second() / f).unwrap_or(f64::NAN);
        table.row(vec![
            model.name().into(),
            model.d_group().to_string(),
            model
                .moe()
                .map(|m| format!("{}x{}", m.experts, m.active_experts))
                .unwrap_or("-".into()),
            flex.map(|v| format!("{v:.4}")).unwrap_or_else(|e| e.to_string()),
            format!("{:.4}", hilos.tokens_per_second()),
            format!("{speedup:.2}x"),
            format!("{:.0}%", hilos.alpha * 100.0),
        ]);
    }
    println!("{table}");
    println!("Note: GQA models (d_group > 1) disable the X-cache (alpha=0%) because");
    println!("their pre-projection activations exceed the grouped KV cache in size.");

    // Context-sensitivity sweep, fanned out across host cores with a
    // deterministic (job-ordered) reduction — results are identical to a
    // serial sweep for any thread count.
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("\nHILOS(16) OPT-66B context sweep (bs={batch}, {threads} threads):\n");
    let sys = HilosSystem::new(
        &SystemSpec::a100_smartssd(16),
        &presets::opt_66b(),
        &HilosConfig::new(16),
    )?;
    let jobs: Vec<BatchSpec> =
        [16u64, 32, 64, 128].map(|kc| BatchSpec::new(batch, kc * 1024, 8)).into();
    let mut sweep = Table::new(vec!["context", "tok/s", "s/step", "alpha"]);
    for (job, report) in jobs.iter().zip(sys.run_decode_sweep(&jobs, threads)) {
        let report = report?;
        sweep.row(vec![
            format!("{}K", job.context_len / 1024),
            format!("{:.4}", report.tokens_per_second()),
            format!("{:.3}", report.avg_step_seconds),
            format!("{:.0}%", report.alpha * 100.0),
        ]);
    }
    println!("{sweep}");
    Ok(())
}
