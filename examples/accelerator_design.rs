//! Accelerator design-space exploration (§4.4, §7.2): sweep the query
//! group size on the KU15P resource budget and ask the paper's PCIe 5.0
//! what-if question.
//!
//! ```sh
//! cargo run --release --example accelerator_design
//! ```

use hilos::accel::{AccelTimingModel, ResourceModel};
use hilos::metrics::Table;
use hilos::storage::SsdSpec;

fn main() {
    let model = ResourceModel::smartssd();
    println!("KU15P design space (clock {:.2} MHz):\n", 296.05);

    let mut table = Table::new(vec![
        "d_group", "LUT%", "DSP%", "BRAM%", "power W", "GFLOPS", "KV GB/s", "fits?",
    ]);
    for d in 1..=model.max_d_group() + 1 {
        match model.report(d) {
            Ok(r) => {
                let t = AccelTimingModel::smartssd(d);
                table.row(vec![
                    d.to_string(),
                    format!("{:.1}", r.utilization[0] * 100.0),
                    format!("{:.1}", r.utilization[4] * 100.0),
                    format!("{:.1}", r.utilization[2] * 100.0),
                    format!("{:.2}", r.power_watts),
                    format!("{:.1}", t.sustained_gflops(128)),
                    format!("{:.1}", t.kv_bytes_per_sec(128) / 1e9),
                    "yes".into(),
                ]);
            }
            Err(e) => {
                table.row(vec![d.to_string(), e.to_string()]);
            }
        }
    }
    println!("{table}");

    // §7.2: a PCIe 5.0 SSD would feed ~4x faster. Does the kernel keep up?
    let gen5_feed = 4.0 * SsdSpec::smartssd_nvme().seq_read_bw();
    println!("\nPCIe 5.0 what-if (Section 7.2): feed = {:.1} GB/s", gen5_feed / 1e9);
    for d in [1u32, 5] {
        let kernel = AccelTimingModel::smartssd(d).kv_bytes_per_sec(128);
        let verdict = if kernel >= gen5_feed { "keeps up" } else { "falls behind" };
        println!(
            "  d_group={d}: kernel drains {:.1} GB/s -> {verdict} (needs ~4x DSP scaling, \
             exceeding the SmartSSD budget, as the paper argues)",
            kernel / 1e9
        );
    }

    // A beefier off-chip memory (the §7.1 ISP LPDDR5X) lifts the ceiling.
    let mut isp = AccelTimingModel::smartssd(1);
    isp.dram_bw = 68e9;
    println!(
        "\nISP-class LPDDR5X (68 GB/s): d_group=1 kernel drains {:.1} GB/s",
        isp.kv_bytes_per_sec(128) / 1e9
    );
}
