//! Quickstart: deploy HILOS on a simulated A100 + 8-SmartSSD server and
//! decode a long-context batch.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hilos::core::{HilosConfig, HilosSystem};
use hilos::llm::{presets, BatchSpec};
use hilos::platform::SystemSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The machine: an A100 server with a SmartSSD expansion chassis.
    let spec = SystemSpec::a100_smartssd(8);
    // The model: OPT-66B (Table 2 of the paper).
    let model = presets::opt_66b();
    // Full HILOS: attention near storage + cooperative X-cache + delayed
    // KV-cache writeback with the paper's default spill interval.
    let config = HilosConfig::new(8).with_spill_interval(16);

    let system = HilosSystem::new(&spec, &model, &config)?;

    // A batched offline job: 16 sequences, 32K-token prompts, 64 outputs.
    let job = BatchSpec::new(16, 32 * 1024, 64);
    system.check_capacity(&job)?;

    let alpha = system.select_alpha(job.batch, job.context_len)?;
    println!("model:          {model}");
    println!("system:         {}", spec.name);
    println!("X-cache ratio:  {:.0}% (selected by the Section 4.2 model)", alpha * 100.0);

    let report = system.run_job(&job)?;
    println!("prefill:        {:.1} s", report.prefill.seconds);
    println!(
        "decode:         {:.1} s ({:.3} token/s)",
        report.decode.decode_seconds,
        report.decode.tokens_per_second()
    );
    println!("end-to-end:     {:.3} token/s", report.tokens_per_second());
    println!(
        "host PCIe traffic per step: {:.2} GB (vs {:.2} GB KV read internally)",
        report.decode.host_pcie_bytes_per_step / 1e9,
        report.decode.internal_read_bytes_per_step / 1e9
    );
    Ok(())
}
