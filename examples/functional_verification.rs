//! Functional verification flow (§5.1): validate the accelerator numerics
//! against references before "committing to synthesis", and reproduce the
//! Fig. 18c accuracy comparison.
//!
//! ```sh
//! cargo run --release --example functional_verification
//! ```

use hilos::accel::{estimator_correlation, MatrixF32};
use hilos::baselines::{accuracy_comparison, DEFAULT_KEEP_FRACTION};
use hilos::core::FunctionalBlock;

fn context(s: usize, h: usize, seed: u64) -> MatrixF32 {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0
    };
    MatrixF32::from_fn(s, h, |_, _| next())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("1) Path equivalence (baseline vs ANS vs X-cache vs writeback)");
    let block = FunctionalBlock::new(64, 42);
    let xs = context(300, 64, 7);
    let xq: Vec<f32> = xs.row(299).to_vec();
    let base = block.attend_baseline(&xq, &xs);
    let ans = block.attend_ans(&xq, &xs)?;
    let xcache = block.attend_xcache(&xq, &xs, 150)?;
    let wb = block.attend_writeback(&xq, &xs, 15)?;
    println!("   |ANS - baseline|      = {:.2e}", base.max_abs_diff(&ans));
    println!("   |X-cache - baseline|  = {:.2e}", base.max_abs_diff(&xcache));
    println!("   |writeback - baseline|= {:.2e}", base.max_abs_diff(&wb));

    println!("\n2) Accuracy on synthetic LongBench-like retrieval (Fig. 18c)");
    let cmp = accuracy_comparison(4096, 10, DEFAULT_KEEP_FRACTION)?;
    println!("   FlashAttention F1      = {:.1}", cmp.flash_f1 * 100.0);
    println!("   HILOS F1               = {:.1} (lossless)", cmp.hilos_f1 * 100.0);
    println!("   InstAttention(1/8) F1  = {:.1}", cmp.instattention_f1 * 100.0);
    println!("   lossy gap              = {:.1} pp (paper: 3.52-5.73 pp)", cmp.lossy_gap_points());

    println!("\n3) Performance estimator (Section 5.1)");
    let (r, _) = estimator_correlation();
    println!("   Pearson r vs timing model = {r:.3} (paper: 0.93)");
    Ok(())
}
