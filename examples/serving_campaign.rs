//! A month of offline serving: run Azure-class request batches back to
//! back on one HILOS deployment and watch the SSD endurance budget burn
//! down — the operational reading of the paper's §6.6 analysis.
//!
//! ```sh
//! cargo run --release --example serving_campaign
//! ```

use hilos::core::{HilosConfig, HilosSystem, ServingCampaign};
use hilos::llm::{presets, BatchSpec, RequestClass};
use hilos::metrics::{fmt_bytes, Table};
use hilos::platform::SystemSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = presets::opt_66b();
    let system = HilosSystem::new(&SystemSpec::a100_smartssd(16), &model, &HilosConfig::new(16))?;
    let mut campaign = ServingCampaign::new(system);

    println!("Serving campaign: {} on 16 SmartSSDs\n", model.name());
    let mut table = Table::new(vec![
        "class",
        "jobs",
        "tokens",
        "hours",
        "NAND written",
        "endurance used",
        "lifetime (jobs)",
    ]);

    // A representative daily mix: mostly medium requests, some long.
    for (class, jobs) in
        [(RequestClass::Short, 6u32), (RequestClass::Medium, 4), (RequestClass::Long, 2)]
    {
        for _ in 0..jobs {
            let spec = BatchSpec::new(16, class.input_tokens(), class.output_tokens());
            campaign.run_job(&spec)?;
        }
        let s = campaign.summary();
        table.row(vec![
            class.to_string(),
            s.jobs.to_string(),
            s.tokens.to_string(),
            format!("{:.2}", s.seconds / 3600.0),
            fmt_bytes(s.nand_bytes_written),
            format!("{:.6}%", s.endurance_used * 100.0),
            format!("{:.2e}", campaign.projected_lifetime_jobs()),
        ]);
    }
    println!("{table}");

    let s = campaign.summary();
    println!(
        "Sustained throughput: {:.2} token/s; projected array lifetime at this mix: {:.1} years",
        s.tokens_per_second(),
        campaign.projected_lifetime_jobs() * (s.seconds / s.jobs as f64) / (365.0 * 24.0 * 3600.0)
    );
    println!("(write-once-read-many: reads dwarf writes, as §6.6 argues)");
    let reads: u64 = campaign.devices().iter().map(|d| d.counters().bytes_read).sum();
    println!(
        "Array reads {} vs NAND writes {}",
        fmt_bytes(reads as f64),
        fmt_bytes(s.nand_bytes_written)
    );
    Ok(())
}
